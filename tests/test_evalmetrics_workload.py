"""Unit tests for the analytic workload model (Eq. 9–11, Fig. 10)."""

import pytest

from repro.core.protocol import ResponsePolicy
from repro.evalmetrics.workload import (
    batched_workload_requests,
    coalesced_workload_requests,
    cumulative_workload_curve,
    expected_first_position,
    expected_num_requests,
    expected_retrieval_count,
    workload_cost,
)
from repro.index.merge import MergePlan

DFS = {"freq": 100, "mid": 50, "rare": 2}
PLAN = MergePlan(groups=(("freq", "mid", "rare"),), r=10.0)


class TestEq10:
    def test_frequent_term_near_head(self):
        assert expected_first_position("freq", ["freq", "mid", "rare"], DFS) == pytest.approx(
            1.52
        )

    def test_rare_term_deep(self):
        assert expected_first_position("rare", ["freq", "mid", "rare"], DFS) == pytest.approx(
            76.0
        )

    def test_singleton_list_position_one(self):
        assert expected_first_position("freq", ["freq"], DFS) == pytest.approx(1.0)

    def test_zero_df_rejected(self):
        with pytest.raises(ValueError):
            expected_first_position("zero", ["zero"], {"zero": 0})


class TestEq11:
    def test_scales_with_k(self):
        n1 = expected_retrieval_count("mid", ["freq", "mid", "rare"], DFS, 1)
        n10 = expected_retrieval_count("mid", ["freq", "mid", "rare"], DFS, 10)
        assert n10 == pytest.approx(10 * n1)

    def test_capped_at_list_size(self):
        # rare with k=50 would need 3800 elements; the list holds 152.
        n = expected_retrieval_count("rare", ["freq", "mid", "rare"], DFS, 50)
        assert n == pytest.approx(152.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            expected_retrieval_count("freq", ["freq"], DFS, 0)


class TestEq9:
    def test_workload_sums_per_term_costs(self):
        queries = {"freq": 10, "rare": 1}
        expected = 10 * expected_retrieval_count(
            "freq", ["freq", "mid", "rare"], DFS, 10
        ) + 1 * expected_retrieval_count("rare", ["freq", "mid", "rare"], DFS, 10)
        assert workload_cost(PLAN, DFS, queries, 10) == pytest.approx(expected)

    def test_unqueried_terms_free(self):
        assert workload_cost(PLAN, DFS, {}, 10) == 0.0

    def test_terms_outside_plan_ignored(self):
        assert workload_cost(PLAN, DFS, {"alien": 100}, 10) == 0.0


class TestFig10Curve:
    def test_monotone_to_one(self):
        queries = {"freq": 100, "mid": 10, "rare": 1}
        curve = cumulative_workload_curve(PLAN, DFS, queries, 10)
        fractions = [f for _, f in curve]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_ordered_by_query_frequency(self):
        queries = {"freq": 100, "mid": 10, "rare": 1}
        curve = cumulative_workload_curve(PLAN, DFS, queries, 10)
        assert [t for t, _ in curve] == ["freq", "mid", "rare"]

    def test_head_dominance_visible(self):
        queries = {"freq": 1000, "mid": 5, "rare": 1}
        curve = cumulative_workload_curve(PLAN, DFS, queries, 10)
        assert curve[0][1] > 0.9

    def test_no_overlap_rejected(self):
        with pytest.raises(ValueError):
            cumulative_workload_curve(PLAN, DFS, {"alien": 5}, 10)


class TestBatchedRequestModel:
    POLICY = ResponsePolicy(initial_size=10)

    def test_expected_num_requests_covers_retrieval_count(self):
        terms = ["freq", "mid", "rare"]
        for term in terms:
            n = expected_num_requests(term, terms, DFS, 10, self.POLICY)
            needed = expected_retrieval_count(term, terms, DFS, 10)
            assert self.POLICY.total_after(n) >= needed
            assert n == 1 or self.POLICY.total_after(n - 1) < needed

    def test_frequent_term_single_round(self):
        # freq's top-10 sits in the first ~16 elements; b=10 doubling
        # covers it in 2 rounds, b=20 in 1.
        terms = ["freq", "mid", "rare"]
        assert expected_num_requests("freq", terms, DFS, 10, self.POLICY) == 2
        assert (
            expected_num_requests(
                "freq", terms, DFS, 10, ResponsePolicy(initial_size=20)
            )
            == 1
        )

    def test_batched_charges_max_per_query(self):
        queries = [["freq", "rare"], ["mid"]]
        per_list, batched = batched_workload_requests(
            PLAN, queries, DFS, 10, self.POLICY
        )
        terms = ["freq", "mid", "rare"]
        r_freq = expected_num_requests("freq", terms, DFS, 10, self.POLICY)
        r_mid = expected_num_requests("mid", terms, DFS, 10, self.POLICY)
        r_rare = expected_num_requests("rare", terms, DFS, 10, self.POLICY)
        assert per_list == r_freq + r_rare + r_mid
        assert batched == max(r_freq, r_rare) + r_mid
        assert batched <= per_list

    def test_unknown_terms_skipped(self):
        per_list, batched = batched_workload_requests(
            PLAN, [["alien"], ["freq", "alien"]], DFS, 10, self.POLICY
        )
        terms = ["freq", "mid", "rare"]
        expected = expected_num_requests("freq", terms, DFS, 10, self.POLICY)
        assert (per_list, batched) == (expected, expected)


class TestCoalescedRequestModel:
    POLICY = ResponsePolicy(initial_size=10)
    # Two merged lists so queries can touch different shards.
    DFS = {"freq": 100, "mid": 50, "rare": 2, "other": 40}
    PLAN = MergePlan(groups=(("freq", "mid", "rare"), ("other",)), r=10.0)

    def test_single_query_coalesced_equals_direct(self):
        direct, coalesced = coalesced_workload_requests(
            self.PLAN, [["freq", "other"]], self.DFS, 10, self.POLICY, 2
        )
        assert direct == coalesced

    def test_concurrent_identical_queries_share_calls(self):
        one_direct, one_coalesced = coalesced_workload_requests(
            self.PLAN, [["freq", "other"]], self.DFS, 10, self.POLICY, 2
        )
        direct, coalesced = coalesced_workload_requests(
            self.PLAN, [["freq", "other"]] * 8, self.DFS, 10, self.POLICY, 2
        )
        # Direct clients each pay their own calls; the coordinator serves
        # all eight from the shared per-shard envelopes of one query.
        assert direct == 8 * one_direct
        assert coalesced == one_coalesced

    def test_coalesced_never_exceeds_direct(self):
        queries = [["freq"], ["mid", "other"], ["rare", "freq"], ["other"]]
        direct, coalesced = coalesced_workload_requests(
            self.PLAN, queries, self.DFS, 10, self.POLICY, 3
        )
        assert 0 < coalesced <= direct

    def test_coalesced_bounded_by_servers_times_ticks(self):
        queries = [["freq", "other"]] * 5
        terms = ["freq", "mid", "rare"]
        horizon = expected_num_requests("freq", terms, self.DFS, 10, self.POLICY)
        _, coalesced = coalesced_workload_requests(
            self.PLAN, queries, self.DFS, 10, self.POLICY, 2
        )
        assert coalesced <= 2 * max(
            horizon,
            expected_num_requests("other", ["other"], self.DFS, 10, self.POLICY),
        )

    def test_empty_and_unknown_queries(self):
        assert coalesced_workload_requests(
            self.PLAN, [["alien"]], self.DFS, 10, self.POLICY, 2
        ) == (0, 0)
        with pytest.raises(ValueError):
            coalesced_workload_requests(
                self.PLAN, [["freq"]], self.DFS, 10, self.POLICY, 0
            )
