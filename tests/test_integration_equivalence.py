"""Integration: Zerber+R retrieval equivalence with the ordinary index.

The paper's accuracy claim: because the RSTF is monotonic per term,
single-term top-k results from Zerber+R are *identical* to the ordinary
inverted index's (§4.2, §8).  Multi-term queries lose only the IDF factor
(§3.2's documented trade-off).
"""

import pytest

from repro.evalmetrics.retrieval import kendall_tau, overlap_at_k


def _score_sequence(hits):
    return [h.rscore for h in hits]


class TestSingleTermEquivalence:
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_topk_scores_identical_for_trained_terms(self, system, ordinary_index, k):
        # Compare the score sequences for a spread of *trained* terms
        # (terms unseen at training time get a random TRS — the paper's
        # rule — and carry no ordering guarantee; see test below).
        # Document-level ties may break differently, but scores match.
        terms = [
            t
            for t in ordinary_index.vocabulary.terms_by_frequency()
            if t in system.rstf_model
        ]
        probes = [terms[0], terms[len(terms) // 4], terms[len(terms) // 2]]
        for term in probes:
            expected = [e.rscore for e in ordinary_index.top_k(term, k)]
            got = _score_sequence(system.query(term, k=k).hits)
            assert got == pytest.approx(expected), term

    def test_unseen_term_complete_result_set(self, system, ordinary_index):
        # Unseen terms get per-element pseudo-random TRS: their relative
        # *order* is arbitrary (the paper's accepted trade-off for terms
        # "assumed to be rare"), but the returned *set* is complete and
        # exact once k covers the term's document frequency.
        unseen = [
            t
            for t in ordinary_index.vocabulary.terms_by_frequency()
            if t not in system.rstf_model
        ]
        assert unseen, "training fraction < 1 must leave some terms unseen"
        checked = 0
        for term in unseen:
            df = ordinary_index.document_frequency(term)
            expected = {e.doc_id for e in ordinary_index.top_k(term, df)}
            got = set(system.query(term, k=df).doc_ids())
            assert got == expected, term
            checked += 1
            if checked >= 5:
                break
        assert checked > 0

    def test_topk_docsets_identical_modulo_ties(self, system, ordinary_index):
        term = ordinary_index.vocabulary.terms_by_frequency()[10]
        k = 10
        expected = ordinary_index.top_k(term, k)
        got = system.query(term, k=k).doc_ids()
        # Build the tie-closure of the expected set: any doc whose score
        # equals the k-th score is admissible.
        full = ordinary_index.posting_list(term)
        if len(expected) < k or len(full) <= k:
            admissible = {e.doc_id for e in full}
        else:
            threshold = expected[-1].rscore
            admissible = {e.doc_id for e in full if e.rscore >= threshold - 1e-12}
        assert set(got) <= admissible

    def test_every_df1_term_found(self, system, ordinary_index, rare_term):
        result = system.query(rare_term, k=1)
        assert len(result.hits) == 1
        expected = ordinary_index.top_k(rare_term, 1)[0]
        assert result.hits[0].doc_id == expected.doc_id


class TestMultiTermAccuracy:
    def test_overlap_with_tfidf_reasonable(self, system, ordinary_index):
        # §3.2: dropping IDF "slightly decreases" multi-term accuracy.
        terms = ordinary_index.vocabulary.terms_by_frequency()
        query = [terms[3], terms[30]]
        expected = [d for d, _ in ordinary_index.top_k_multi(query, 10)]
        client = system.client_for("superuser")
        got, _ = client.query_multi(query, 10)
        got_ids = [d for d, _ in got]
        assert overlap_at_k(got_ids, expected, 10) >= 0.3

    def test_single_term_multi_query_degenerates_to_query(self, system, medium_term):
        client = system.client_for("superuser")
        ranked, traces = client.query_multi([medium_term], 5)
        single = system.query(medium_term, k=5)
        assert [d for d, _ in ranked] == single.doc_ids()
        assert len(traces) == 1


class TestZerberComparison:
    def test_zerber_r_ships_less_than_zerber(self, corpus):
        """The headline improvement: server-side top-k cuts bandwidth."""
        from repro.baselines.zerber import ZerberSystem
        from repro import SystemConfig, ZerberRSystem

        zerber = ZerberSystem.build(corpus, r=4.0, seed=13)
        zerber_r = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=13))
        terms = zerber_r.vocabulary.terms_by_frequency()[:10]
        total_zerber = 0
        total_zerber_r = 0
        for term in terms:
            total_zerber += zerber.query(term, 10).trace.elements_transferred
            total_zerber_r += zerber_r.query(term, 10).trace.elements_transferred
        assert total_zerber_r < total_zerber

    def test_same_results_both_systems(self, corpus):
        from repro.baselines.zerber import ZerberSystem
        from repro import SystemConfig, ZerberRSystem

        zerber = ZerberSystem.build(corpus, r=4.0, seed=13)
        zerber_r = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=13))
        term = zerber_r.vocabulary.terms_by_frequency()[5]
        scores_a = [h.rscore for h in zerber.query(term, 5).hits]
        scores_b = [h.rscore for h in zerber_r.query(term, 5).hits]
        assert scores_a == pytest.approx(scores_b)


class TestRankCorrelation:
    def test_full_ranking_tau_is_one(self, system, ordinary_index):
        term = ordinary_index.vocabulary.terms_by_frequency()[5]
        df = ordinary_index.document_frequency(term)
        expected = [e.doc_id for e in ordinary_index.top_k(term, df)]
        got = system.query(term, k=df).doc_ids()
        # Scores tie across docs; tau over the common order of *scores*
        # cannot be computed directly on ids, so check score sequences and
        # subset identity instead, then tau on the distinct-score prefix.
        distinct_prefix = []
        seen = set()
        for e in ordinary_index.top_k(term, df):
            if e.rscore not in seen:
                seen.add(e.rscore)
                distinct_prefix.append(e.doc_id)
        if len(distinct_prefix) >= 2:
            assert kendall_tau(got, expected) >= 0.9
