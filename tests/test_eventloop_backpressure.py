"""Property suite for overload behaviour of the event-driven coordinator.

Hypothesis drives open-loop arrival schedules *above* the admission
capacity and checks the backpressure invariants that make shedding safe:

* the parked-session count never exceeds ``max_queue_depth`` — the bound
  is enforced at admission, not discovered at flush time;
* no acknowledged work is lost: with retry-on-shed, every arrival
  eventually completes, and each result equals the direct query path
  (shedding defers admission, it never corrupts scheduling);
* every shed is recorded with a well-formed retry hint;
* after quiescence the replication data plane converges — all replicas
  of every list agree with the primary (the delivery daemon on the loop
  is a full substitute for the legacy chained replication tick);
* the same arrival tape against a fresh identical deployment produces
  identical stats and shed records (virtual-time determinism).
"""

from hypothesis import given, settings, strategies as st

from repro.core.client import ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.eventloop import MAINTENANCE
from repro.core.router import Coordinator
from repro.core.rstf import RstfModel, train_rstf
from repro.crypto.keys import GroupKeyService
from repro.index.merge import MergePlan
from repro.text.analysis import DocumentStats

TERMS = ("apple", "pear", "plum")
PRINCIPALS = ("p0", "p1", "p2")

PLAN = MergePlan(groups=(("apple", "pear"), ("plum",)), r=2.0)
MODEL = RstfModel(
    {
        "apple": train_rstf([0.1, 0.2, 0.3, 0.5], sigma=20.0),
        "pear": train_rstf([0.05, 0.15, 0.4], sigma=20.0),
        "plum": train_rstf([0.2, 0.6], sigma=20.0),
    }
)


def _keys():
    svc = GroupKeyService(master_secret=b"b" * 32)
    for principal in PRINCIPALS:
        svc.register(principal, {"g1"})
    return svc


def _deploy(docs, *, max_queue_depth, credits, round_latency, lag=0):
    """Fresh cluster + coordinator with *docs* indexed before arrivals."""
    keys = _keys()
    cluster = ServerCluster(
        keys,
        num_lists=PLAN.num_lists,
        num_servers=2,
        replication=2,
        lag=lag,
    )
    clients = {
        p: ZerberRClient(
            principal=p,
            key_service=keys,
            server=cluster,
            rstf_model=MODEL,
            merge_plan=PLAN,
        )
        for p in PRINCIPALS
    }
    writer = clients[PRINCIPALS[0]]
    for i, counts in enumerate(docs):
        writer.index_document(
            DocumentStats.from_counts(f"doc-{i}", counts), "g1"
        )
    cluster.run_replication_until_quiet()
    coordinator = Coordinator(
        cluster,
        max_queue_depth=max_queue_depth,
        credits_per_principal=credits,
        round_latency=round_latency,
    )
    return cluster, coordinator, clients


# One document's term counts: every doc mentions at least one query term.
doc_counts = st.dictionaries(
    st.sampled_from(TERMS), st.integers(1, 6), min_size=1, max_size=3
)

# One arrival: (tick, principal index, terms to query, k).
arrivals_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, len(PRINCIPALS) - 1),
        st.lists(st.sampled_from(TERMS), min_size=1, max_size=2, unique=True),
        st.integers(1, 4),
    ),
    min_size=1,
    max_size=10,
)


def _run_schedule(coordinator, clients, arrivals):
    """Submit every arrival on the virtual clock; returns the sessions
    and the per-tick queue-depth samples from a maintenance probe."""
    sessions = []
    for tick, principal_idx, terms, k in arrivals:
        client = clients[PRINCIPALS[principal_idx]]
        session = client.open_multi_session(terms, k)
        sessions.append(session)
        coordinator.submit_arrival(session, at=tick)
    depths = []
    coordinator.loop.every(
        1,
        lambda: depths.append(coordinator.active_sessions),
        name="depth-probe",
        priority=MAINTENANCE,
    )
    coordinator.drain()
    return sessions, depths


@given(
    docs=st.lists(doc_counts, min_size=1, max_size=5),
    arrivals=arrivals_strategy,
    max_queue_depth=st.integers(1, 3),
    credits=st.one_of(st.none(), st.integers(1, 2)),
    round_latency=st.integers(0, 2),
)
@settings(max_examples=25, deadline=None)
def test_overload_sheds_without_losing_work(
    docs, arrivals, max_queue_depth, credits, round_latency
):
    cluster, coordinator, clients = _deploy(
        docs,
        max_queue_depth=max_queue_depth,
        credits=credits,
        round_latency=round_latency,
    )
    sessions, depths = _run_schedule(coordinator, clients, arrivals)
    # Bounded queue: admission enforces the depth cap at every instant.
    assert all(depth <= max_queue_depth for depth in depths)
    # No lost acknowledged work: every arrival completed despite sheds.
    assert all(session.done for session in sessions)
    assert coordinator.stats.sessions_completed == len(sessions)
    # Every shed carries a well-formed deterministic retry hint.
    assert coordinator.stats.backpressure_sheds == len(coordinator.sheds)
    for signal in coordinator.sheds:
        assert signal.retry_after_ticks >= 1
        assert signal.reason in ("queue", "credits")
        assert signal.queue_depth >= signal.limit
    # Scheduling never corrupts results: each equals the direct path.
    for (tick, principal_idx, terms, k), session in zip(arrivals, sessions):
        direct = clients[PRINCIPALS[principal_idx]].query_multi_batched(
            terms, k
        )
        assert session.result().ranked == direct.ranked


@given(
    docs=st.lists(doc_counts, min_size=1, max_size=4),
    arrivals=arrivals_strategy,
    lag=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_replication_converges_after_quiesce(docs, arrivals, lag):
    cluster, coordinator, clients = _deploy(
        docs, max_queue_depth=2, credits=None, round_latency=1, lag=lag
    )
    _run_schedule(coordinator, clients, arrivals)
    cluster.run_replication_until_quiet()
    for list_id in range(PLAN.num_lists):
        versions = {
            cluster.applied_version(list_id, s)
            for s in cluster.replicas_of(list_id)
        }
        assert versions == {cluster.primary_version(list_id)}


@given(
    docs=st.lists(doc_counts, min_size=1, max_size=4),
    arrivals=arrivals_strategy,
    round_latency=st.integers(0, 2),
)
@settings(max_examples=10, deadline=None)
def test_same_tape_is_deterministic(docs, arrivals, round_latency):
    runs = []
    for _ in range(2):
        _, coordinator, clients = _deploy(
            docs, max_queue_depth=2, credits=1, round_latency=round_latency
        )
        sessions, depths = _run_schedule(coordinator, clients, arrivals)
        runs.append(
            (
                coordinator.stats,
                list(coordinator.sheds),
                depths,
                [s.result().ranked for s in sessions],
                coordinator.loop.now,
            )
        )
    assert runs[0] == runs[1]
