"""Unit tests for relevance scoring (Eq. 3/4)."""

import math

import pytest

from repro.core.scoring import (
    extract_term_scores,
    rscore,
    scores_by_term_for_corpus,
    tfidf_rscore,
)
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


class TestRscore:
    def test_eq4(self):
        assert rscore(3, 12) == pytest.approx(0.25)

    def test_bounds(self):
        assert rscore(0, 10) == 0.0
        assert rscore(10, 10) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            rscore(1, 0)
        with pytest.raises(ValueError):
            rscore(-1, 10)
        with pytest.raises(ValueError):
            rscore(11, 10)


class TestTfidf:
    def test_matches_eq3(self):
        docs = [_doc("d1", {"a": 2, "b": 2}), _doc("d2", {"a": 1})]
        vocab = Vocabulary.from_documents(docs)
        score = tfidf_rscore(["b"], docs[0], vocab)
        assert score == pytest.approx((2 / 4) * math.log(2 / 1))

    def test_multi_term_sums(self):
        docs = [_doc("d1", {"a": 1, "b": 1}), _doc("d2", {"b": 1})]
        vocab = Vocabulary.from_documents(docs)
        combined = tfidf_rscore(["a", "b"], docs[0], vocab)
        single_a = tfidf_rscore(["a"], docs[0], vocab)
        single_b = tfidf_rscore(["b"], docs[0], vocab)
        assert combined == pytest.approx(single_a + single_b)

    def test_absent_and_unknown_terms_ignored(self):
        docs = [_doc("d1", {"a": 1}), _doc("d2", {"b": 1})]
        vocab = Vocabulary.from_documents(docs)
        assert tfidf_rscore(["zzz", "b"], docs[0], vocab) == 0.0


class TestExtraction:
    def test_extract_term_scores(self):
        scores = extract_term_scores(
            [_doc("d1", {"a": 1, "b": 3}), _doc("d2", {"a": 2})]
        )
        assert scores["a"] == [pytest.approx(0.25), pytest.approx(1.0)]
        assert scores["b"] == [pytest.approx(0.75)]

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError):
            extract_term_scores([DocumentStats(doc_id="e", counts={}, length=0)])

    def test_restricted_extraction(self):
        scores = scores_by_term_for_corpus(
            [_doc("d1", {"a": 1, "b": 1})], terms=["a"]
        )
        assert set(scores) == {"a"}
        assert scores["a"] == [pytest.approx(0.5)]

    def test_restricted_extraction_missing_term_empty(self):
        scores = scores_by_term_for_corpus([_doc("d1", {"a": 1})], terms=["q"])
        assert scores["q"] == []
