"""Failure injection: a malicious or faulty server must degrade safely.

The threat model lets the adversary *read* the server; a stronger (byzantine)
server could also corrupt or reorder data.  Zerber+R clients cannot always
detect missing results, but they must (a) never crash, (b) never return
forged elements (the MAC rejects them), and (c) never mis-rank what they do
return (scores come from authenticated plaintext, not server claims).
"""

import numpy as np
import pytest

from repro import SystemConfig, ZerberRSystem
from repro.index.postings import EncryptedPostingElement


@pytest.fixture()
def system(micro_corpus):
    # Function-scoped: these tests mutate server state.
    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=15))


def _some_term(system, min_df=3):
    for term in system.vocabulary.terms_by_frequency():
        if system.vocabulary.document_frequency(term) >= min_df:
            return term
    raise RuntimeError("no suitable term")


class TestTamperedCiphertexts:
    def test_corrupted_element_skipped_not_crashed(self, system):
        term = _some_term(system)
        list_id = system.merge_plan.list_of(term)
        merged = system.server._lists[list_id]
        # Flip a byte in the highest-TRS element's ciphertext.
        victim = merged.elements[0]
        corrupted = EncryptedPostingElement(
            ciphertext=bytes([victim.ciphertext[0] ^ 0xFF]) + victim.ciphertext[1:],
            group=victim.group,
            trs=victim.trs,
        )
        merged.elements[0] = corrupted
        merged.version += 1
        result = system.query(term, k=3)
        # No crash; corrupted element silently dropped; remaining hits are
        # genuine and correctly ordered.
        scores = [h.rscore for h in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_forged_element_rejected(self, system):
        term = _some_term(system)
        list_id = system.merge_plan.list_of(term)
        group = system.server._lists[list_id].elements[0].group
        forged = EncryptedPostingElement(
            ciphertext=b"forged-by-the-server" * 3, group=group, trs=0.999
        )
        system.server._lists[list_id].add_sorted_by_trs(forged)
        result = system.query(term, k=3)
        # The forged top element fails authentication: it can waste
        # bandwidth but never appear as a hit.
        assert all(h.rscore > 0 for h in result.hits)
        assert len(result.hits) <= 3

    def test_relabelled_group_cannot_leak_across_groups(self, system, micro_corpus):
        # Server relabels a g0 element as g1 hoping a g1 member decrypts
        # it: the g1 key fails authentication, nothing leaks.
        groups = sorted(micro_corpus.groups())
        term = _some_term(system)
        list_id = system.merge_plan.list_of(term)
        merged = system.server._lists[list_id]
        victim_index = next(
            i for i, e in enumerate(merged.elements) if e.group == groups[0]
        )
        victim = merged.elements[victim_index]
        merged.elements[victim_index] = EncryptedPostingElement(
            ciphertext=victim.ciphertext, group=groups[1], trs=victim.trs
        )
        merged.version += 1
        reader = system.register_user("reader-g1", {groups[1]})
        result = reader.query(term, k=10)
        assert all(h.group == groups[1] for h in result.hits)


class TestMisorderedServer:
    def test_shuffled_list_still_returns_correctly_ranked_subset(self, system):
        """A server that violates TRS order can hide results but cannot
        corrupt the ranking of what the client receives."""
        term = _some_term(system, min_df=4)
        list_id = system.merge_plan.list_of(term)
        merged = system.server._lists[list_id]
        rng = np.random.default_rng(3)
        perm = rng.permutation(len(merged.elements))
        merged.elements[:] = [merged.elements[i] for i in perm]
        merged._neg_trs_keys[:] = [
            -e.trs if e.trs is not None else 0.0 for e in merged.elements
        ]
        merged.version += 1
        result = system.query(term, k=3)
        scores = [h.rscore for h in result.hits]
        assert scores == sorted(scores, reverse=True)
        # Every returned hit is genuine (decrypted + authenticated).
        truth = {
            d
            for d in system.corpus.doc_ids()
            if system.corpus.stats(d).tf(term) > 0
        }
        assert set(result.doc_ids()) <= truth


class TestWithholdingServer:
    def test_empty_list_returns_empty_not_error(self, system):
        term = _some_term(system)
        list_id = system.merge_plan.list_of(term)
        system.server._lists[list_id].elements.clear()
        system.server._lists[list_id]._neg_trs_keys.clear()
        system.server._lists[list_id].version += 1
        result = system.query(term, k=5)
        assert result.hits == ()
        assert not result.trace.satisfied
