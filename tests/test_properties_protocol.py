"""Property-based tests for protocol arithmetic and uniformness measures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.protocol import ResponsePolicy
from repro.stats.uniformness import ks_distance, uniformness_variance


@given(
    b=st.integers(min_value=1, max_value=1000),
    n=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=200, deadline=None)
def test_eq12_closed_form(b, n):
    """total_after matches the geometric closed form b*(2^n - 1)."""
    policy = ResponsePolicy(initial_size=b)
    assert policy.total_after(n) == b * (2**n - 1)


@given(
    b=st.integers(min_value=1, max_value=100),
    g=st.integers(min_value=1, max_value=5),
    n=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=200, deadline=None)
def test_response_sizes_consistent_with_total(b, g, n):
    policy = ResponsePolicy(initial_size=b, growth_factor=g)
    assert sum(policy.response_size(i) for i in range(n)) == policy.total_after(n)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=150, deadline=None)
def test_uniformness_variance_bounded(values):
    """The measure is a mean of squared deviations inside [0,1]: <= 1."""
    v = uniformness_variance(values)
    assert 0.0 <= v <= 1.0


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=200,
    ),
    shift=st.floats(min_value=-0.2, max_value=0.2),
)
@settings(max_examples=100, deadline=None)
def test_ks_distance_triangle_like(values, shift):
    """KS distance is a metric: symmetric, zero on identity, bounded by 1."""
    a = np.asarray(values)
    b = np.clip(a + shift, 0.0, 1.0)
    d_ab = ks_distance(a, b)
    assert 0.0 <= d_ab <= 1.0
    assert ks_distance(a, a) == 0.0
    assert d_ab == ks_distance(b, a)


@given(
    n=st.integers(min_value=50, max_value=500),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_uniform_sample_beats_clustered_sample(n, seed):
    # A point mass at 0.5 has variance ~ E[(U-0.5)^2] = 1/12 - O(1/n);
    # a genuine uniform sample concentrates near 0.  Compare with a margin
    # so the test is deterministic for all seeds at n >= 50.
    rng = np.random.default_rng(seed)
    uniform = rng.random(n)
    clustered = 0.5 + 0.01 * rng.random(n)
    assert uniformness_variance(uniform) < uniformness_variance(clustered) + 0.01
    assert uniformness_variance(clustered) > 0.02
