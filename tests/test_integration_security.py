"""Integration: the §6.2 security argument on a real (synthetic) deployment.

Runs the two threat-model attacks against an assembled system and checks
that the defences hold end-to-end: TRS values look uniform per list,
the score-distribution attack collapses, and BFM keeps follow-up counts
aligned within merged lists.
"""

import numpy as np
import pytest

from repro import SystemConfig, ZerberRSystem
from repro.attacks.background import BackgroundKnowledge
from repro.attacks.query_observation import QueryObservationAttack, extract_sessions
from repro.core.protocol import ResponsePolicy
from repro.stats.uniformness import ks_distance_to_uniform


class TestServerVisibleState:
    def test_trs_near_uniform_per_populated_list(self, system):
        """Every reasonably large merged list's TRS sample must look uniform."""
        distances = []
        for list_id in range(system.merge_plan.num_lists):
            trs = system.server.visible_trs_values(list_id)
            if len(trs) >= 40:
                distances.append(ks_distance_to_uniform(trs))
        assert distances, "test corpus produced no large merged lists"
        # KS noise floor for n≈40-60 uniform samples is ~0.2; require the
        # median to sit at that floor rather than show structure.
        assert float(np.median(distances)) < 0.25

    def test_trs_sorted_descending_per_list(self, system):
        for list_id in range(min(system.merge_plan.num_lists, 50)):
            trs = system.server.visible_trs_values(list_id)
            assert trs == sorted(trs, reverse=True)

    def test_ciphertexts_unique(self, system):
        seen = set()
        for list_id in range(system.merge_plan.num_lists):
            for trs_element in system.server._lists[list_id].elements:
                assert trs_element.ciphertext not in seen
                seen.add(trs_element.ciphertext)


class TestQueryObservationDefence:
    def test_bfm_lists_leak_little(self, system):
        dfs = {t: system.vocabulary.document_frequency(t) for t in system.vocabulary}
        attack = QueryObservationAttack(dfs)
        policy = ResponsePolicy(initial_size=10)
        leaks = []
        for group in system.merge_plan.groups:
            if len(group) >= 2:
                leaks.append(attack.list_leakage(list(group), 10, policy))
        assert leaks
        # BFM keeps frequencies similar within lists; the doubling protocol
        # absorbs residual spread — most lists must leak at most 1 class.
        assert float(np.mean([l <= 1 for l in leaks])) > 0.8

    def test_greedy_merge_leaks_more(self, corpus):
        """Ablation: head+tail merging makes request counts informative."""
        bfm = ZerberRSystem.build(
            corpus, SystemConfig(r=3.0, merge_scheme="bfm", seed=2)
        )
        greedy = ZerberRSystem.build(
            corpus, SystemConfig(r=3.0, merge_scheme="greedy", seed=2)
        )
        policy = ResponsePolicy(initial_size=10)

        def max_leak(sys_):
            dfs = {t: sys_.vocabulary.document_frequency(t) for t in sys_.vocabulary}
            attack = QueryObservationAttack(dfs)
            return max(
                attack.list_leakage(list(g), 10, policy)
                for g in sys_.merge_plan.groups
                if len(g) >= 2
            )

        assert max_leak(greedy) > max_leak(bfm)

    def test_sessions_reconstructable_from_server_log(self, system, medium_term):
        system.server.clear_observations()
        system.query(medium_term, k=5)
        sessions = extract_sessions(system.server.observations)
        assert len(sessions) == 1
        assert sessions[0].list_id == system.merge_plan.list_of(medium_term)
        system.server.clear_observations()


class TestScoreDistributionDefence:
    def test_trs_values_carry_no_term_signal(self, system, corpus):
        """Group server-visible TRS by true term; all must look alike.

        The adversary's best feature was score range/shape per term —
        after the RSTF, per-term TRS samples are all ~Uniform[0,1], so the
        max KS distance between any term's TRS and uniform stays small.
        """
        from repro.core.scoring import extract_term_scores

        term_scores = extract_term_scores(corpus.all_stats())
        client = system.client_for("superuser")
        distances = []
        for term, scores in term_scores.items():
            if len(scores) < 40 or term not in system.rstf_model:
                continue
            trs = system.rstf_model.get(term).transform(np.asarray(scores))
            distances.append(ks_distance_to_uniform(trs))
        assert distances
        assert float(np.median(distances)) < 0.25

    def test_plain_scores_do_carry_signal(self, corpus):
        """Sanity: without the RSTF the same measurement finds structure."""
        from repro.core.scoring import extract_term_scores

        term_scores = extract_term_scores(corpus.all_stats())
        distances = []
        for term, scores in term_scores.items():
            if len(scores) < 40:
                continue
            arr = np.asarray(scores)
            scaled = (arr - arr.min()) / max(arr.max() - arr.min(), 1e-12)
            distances.append(ks_distance_to_uniform(scaled))
        assert distances
        assert float(np.median(distances)) > 0.3
