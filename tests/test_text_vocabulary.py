"""Unit tests for the corpus vocabulary (df, p_t, IDF)."""

import math

import pytest

from repro.errors import UnknownTermError
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


@pytest.fixture()
def vocab():
    return Vocabulary.from_documents(
        [
            _doc("d1", {"a": 2, "b": 1}),
            _doc("d2", {"a": 1, "c": 3}),
            _doc("d3", {"a": 1}),
        ]
    )


class TestVocabulary:
    def test_document_counting(self, vocab):
        assert vocab.num_documents == 3

    def test_distinct_terms(self, vocab):
        assert vocab.num_terms == 3

    def test_total_term_occurrences(self, vocab):
        assert vocab.total_term_occurrences == 8

    def test_document_frequency(self, vocab):
        assert vocab.document_frequency("a") == 3
        assert vocab.document_frequency("b") == 1

    def test_document_frequency_unseen_is_zero(self, vocab):
        assert vocab.document_frequency("zzz") == 0

    def test_probability_is_normalized_df(self, vocab):
        assert vocab.probability("a") == pytest.approx(1.0)
        assert vocab.probability("b") == pytest.approx(1 / 3)

    def test_probability_unseen_raises(self, vocab):
        with pytest.raises(UnknownTermError):
            vocab.probability("zzz")

    def test_probability_or_zero(self, vocab):
        assert vocab.probability_or_zero("zzz") == 0.0
        assert vocab.probability_or_zero("a") == pytest.approx(1.0)

    def test_probability_on_empty_vocab_raises(self):
        with pytest.raises(UnknownTermError):
            Vocabulary().probability("a")

    def test_idf(self, vocab):
        assert vocab.idf("b") == pytest.approx(math.log(3))
        assert vocab.idf("a") == pytest.approx(0.0)

    def test_idf_unseen_raises(self, vocab):
        with pytest.raises(UnknownTermError):
            vocab.idf("zzz")

    def test_terms_by_frequency_descending(self, vocab):
        ordered = vocab.terms_by_frequency()
        assert ordered[0] == "a"
        assert set(ordered) == {"a", "b", "c"}

    def test_terms_by_frequency_tie_break_lexicographic(self, vocab):
        ordered = vocab.terms_by_frequency()
        assert ordered[1:] == ["b", "c"]  # both df=1

    def test_terms_by_frequency_ascending(self, vocab):
        ordered = vocab.terms_by_frequency(descending=False)
        assert ordered[-1] == "a"

    def test_incremental_add(self, vocab):
        vocab2 = Vocabulary()
        vocab2.add_document(_doc("x", {"q": 1}))
        assert vocab2.document_frequency("q") == 1
        assert vocab2.num_documents == 1

    def test_mapping_protocol(self, vocab):
        assert "a" in vocab
        assert "zzz" not in vocab
        assert len(vocab) == 3
        assert set(iter(vocab)) == {"a", "b", "c"}

    def test_document_frequencies_copy(self, vocab):
        dfs = vocab.document_frequencies()
        dfs["a"] = 999
        assert vocab.document_frequency("a") == 3
