"""Unit and fuzz tests for the indexable skip list behind readable views."""

import bisect
import random

import pytest

from repro.core.ordstat import OrderStatList


class TestBasics:
    def test_empty(self):
        osl = OrderStatList()
        assert len(osl) == 0
        assert list(osl) == []
        assert osl.slice(0, 10) == []
        assert osl.bisect_left(0.5) == 0
        assert osl.bisect_right(0.5) == 0

    def test_single_insert(self):
        osl = OrderStatList()
        assert osl.insert(0.5, "a") == 0
        assert len(osl) == 1
        assert osl[0] == "a"
        assert osl.slice(0, 1) == ["a"]

    def test_insert_returns_bisect_right_position(self):
        osl = OrderStatList()
        assert osl.insert(0.5, "first") == 0
        assert osl.insert(0.5, "second") == 1  # ties land after equals
        assert osl.insert(0.2, "head") == 0
        assert osl.insert(0.9, "tail") == 3
        assert list(osl) == ["head", "first", "second", "tail"]

    def test_pop(self):
        osl = OrderStatList()
        for i, key in enumerate([0.1, 0.3, 0.5, 0.7]):
            osl.insert(key, i)
        assert osl.pop(1) == 1
        assert list(osl) == [0, 2, 3]
        assert osl.pop(2) == 3
        assert list(osl) == [0, 2]

    def test_pop_out_of_range(self):
        osl = OrderStatList()
        osl.insert(0.5, "x")
        with pytest.raises(IndexError):
            osl.pop(1)
        with pytest.raises(IndexError):
            osl.pop(-1)

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            OrderStatList()[0]

    def test_slice_clamps(self):
        osl = OrderStatList()
        for i in range(5):
            osl.insert(float(i), i)
        assert osl.slice(3, 10) == [3, 4]
        assert osl.slice(5, 3) == []
        assert osl.slice(0, 0) == []

    def test_slice_rejects_negative(self):
        with pytest.raises(ValueError):
            OrderStatList().slice(-1, 2)
        with pytest.raises(ValueError):
            OrderStatList().slice(0, -2)

    def test_from_sorted(self):
        items = [(float(i) / 7, i) for i in range(50)]
        osl = OrderStatList.from_sorted(items)
        assert len(osl) == 50
        assert list(osl) == [v for _, v in items]
        assert list(osl.keys()) == [k for k, _ in items]
        assert osl.slice(10, 5) == [10, 11, 12, 13, 14]

    def test_from_sorted_preserves_tie_order(self):
        items = [(0.5, "a"), (0.5, "b"), (0.5, "c")]
        osl = OrderStatList.from_sorted(items)
        assert list(osl) == ["a", "b", "c"]

    def test_from_sorted_then_mutate(self):
        osl = OrderStatList.from_sorted([(0.2, "a"), (0.6, "c")])
        osl.insert(0.4, "b")
        assert list(osl) == ["a", "b", "c"]
        assert osl.pop(0) == "a"
        assert list(osl) == ["b", "c"]


class TestFuzzAgainstList:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_ops_match_bisect_list(self, seed):
        rng = random.Random(seed)
        osl = OrderStatList(seed=seed)
        keys: list[float] = []
        values: list[object] = []
        if seed % 2:
            pairs = sorted((rng.random(), i) for i in range(rng.randrange(80)))
            keys = [k for k, _ in pairs]
            values = [v for _, v in pairs]
            osl = OrderStatList.from_sorted(zip(keys, values), seed=seed)
        for op in range(600):
            roll = rng.random()
            if roll < 0.55 or not keys:
                key = rng.choice(keys) if keys and roll < 0.1 else rng.random()
                value = (op, key)
                position = osl.insert(key, value)
                expected = bisect.bisect_right(keys, key)
                assert position == expected
                keys.insert(expected, key)
                values.insert(expected, value)
            elif roll < 0.8:
                index = rng.randrange(len(keys))
                assert osl.pop(index) == values.pop(index)
                del keys[index]
            else:
                probe = rng.choice(keys) if rng.random() < 0.5 else rng.random()
                assert osl.bisect_left(probe) == bisect.bisect_left(keys, probe)
                assert osl.bisect_right(probe) == bisect.bisect_right(keys, probe)
            assert len(osl) == len(keys)
            if op % 60 == 0:
                assert list(osl) == values
                start = rng.randrange(len(keys) + 2)
                count = rng.randrange(8)
                assert osl.slice(start, count) == values[start : start + count]
                if keys:
                    index = rng.randrange(len(keys))
                    assert osl[index] == values[index]
