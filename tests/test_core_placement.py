"""Unit tests for pluggable placement policies and shard migration."""

import pytest

from repro.core.cluster import ServerCluster
from repro.core.placement import (
    HeatWeightedPlacement,
    RoundRobinPlacement,
    load_balance_ratio,
    validate_placement,
)
from repro.core.protocol import FetchRequest
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.postings import EncryptedPostingElement


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"p" * 32)
    svc.register("u", {"g"})
    return svc


def _element(trs, payload=b"cipher"):
    return EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)


class TestRoundRobinPlacement:
    def test_matches_seed_modulo_rule(self):
        placement = RoundRobinPlacement().initial_placement(
            num_lists=10, num_servers=4, replication=2
        )
        for list_id, replicas in enumerate(placement):
            assert replicas == (list_id % 4, (list_id + 1) % 4)

    def test_never_proposes_moves(self):
        policy = RoundRobinPlacement()
        current = policy.initial_placement(6, 3, 1)
        assert policy.propose({0: 1000}, current, 3, 1) == {}


class TestValidation:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            validate_placement([(0,)], num_lists=2, num_servers=2, replication=1)
        with pytest.raises(ConfigurationError):
            validate_placement(
                [(0,), (1, 0)], num_lists=2, num_servers=2, replication=1
            )

    def test_rejects_duplicate_or_unknown_servers(self):
        with pytest.raises(ConfigurationError):
            validate_placement([(1, 1)], num_lists=1, num_servers=2, replication=2)
        with pytest.raises(ConfigurationError):
            validate_placement([(5,)], num_lists=1, num_servers=2, replication=1)


class TestHeatWeightedPlacement:
    def test_initial_is_round_robin(self):
        hw = HeatWeightedPlacement().initial_placement(8, 4, 2)
        rr = RoundRobinPlacement().initial_placement(8, 4, 2)
        assert hw == rr

    def test_separates_colliding_hot_lists(self):
        """Two hot lists congruent mod N must not share a primary."""
        policy = HeatWeightedPlacement()
        current = policy.initial_placement(8, 4, 1)
        heat = {0: 100, 4: 100, 1: 1, 2: 1, 3: 1, 5: 1, 6: 1, 7: 1}
        proposal = policy.propose(heat, current, 4, 1)
        merged = {
            list_id: proposal.get(list_id, current[list_id])
            for list_id in range(8)
        }
        assert merged[0][0] != merged[4][0]

    def test_lowers_max_over_mean_on_skewed_heat(self):
        policy = HeatWeightedPlacement()
        current = policy.initial_placement(8, 4, 1)
        heat = {0: 100, 4: 100, 1: 1, 2: 1, 3: 1, 5: 1, 6: 1, 7: 1}
        proposal = policy.propose(heat, current, 4, 1)
        rebalanced = [
            proposal.get(list_id, current[list_id]) for list_id in range(8)
        ]
        assert load_balance_ratio(heat, rebalanced, 4) < load_balance_ratio(
            heat, current, 4
        )

    def test_cold_lists_stay_put(self):
        policy = HeatWeightedPlacement()
        current = policy.initial_placement(6, 3, 1)
        proposal = policy.propose({0: 50}, current, 3, 1)
        assert all(list_id == 0 for list_id in proposal) or proposal == {}

    def test_replicas_distinct(self):
        policy = HeatWeightedPlacement()
        current = policy.initial_placement(6, 3, 2)
        proposal = policy.propose(
            {i: 10 * (6 - i) for i in range(6)}, current, 3, 2
        )
        for replicas in proposal.values():
            assert len(set(replicas)) == 2


class TestHeatDecay:
    def test_invalid_half_life_rejected(self):
        with pytest.raises(ConfigurationError):
            HeatWeightedPlacement(heat_half_life=0)
        with pytest.raises(ConfigurationError):
            HeatWeightedPlacement(heat_half_life=-2)

    def test_no_decay_by_default(self):
        policy = HeatWeightedPlacement()
        current = policy.initial_placement(2, 2, 1)
        heat = {0: 100, 1: 3}
        for _ in range(5):
            policy.propose(heat, current, 2, 1)
            assert policy.effective_heat(heat) == {0: 100.0, 1: 3.0}

    def test_effective_heat_is_a_pure_preview(self):
        """Observing heat must not advance the decay clock."""
        policy = HeatWeightedPlacement(heat_half_life=1)
        current = policy.initial_placement(2, 2, 1)
        policy.propose({0: 64}, current, 2, 1)  # tick: state 64
        first = policy.effective_heat({0: 64})
        for _ in range(5):  # repeated observation changes nothing
            assert policy.effective_heat({0: 64}) == first

    def test_first_observation_arrives_at_full_weight(self):
        decayed = HeatWeightedPlacement(heat_half_life=2)
        plain = HeatWeightedPlacement()
        heat = {0: 100, 4: 100, 1: 1, 2: 1, 3: 1, 5: 1, 6: 1, 7: 1}
        current = plain.initial_placement(8, 4, 1)
        # A fresh decaying policy proposes exactly like the plain one: all
        # heat is new, so nothing has decayed yet.
        assert decayed.propose(heat, current, 4, 1) == plain.propose(
            heat, current, 4, 1
        )

    def test_idle_heat_halves_per_half_life(self):
        policy = HeatWeightedPlacement(heat_half_life=1)
        current = policy.initial_placement(2, 2, 1)
        policy.propose({0: 64}, current, 2, 1)  # tick 1: all heat fresh
        # No new fetches: each rebalance cycle is one half-life tick, and
        # effective_heat previews what the NEXT propose would rank by.
        assert policy.effective_heat({0: 64}) == {0: 32.0}
        policy.propose({0: 64}, current, 2, 1)  # tick 2
        assert policy.effective_heat({0: 64}) == {0: 16.0}

    def test_briefly_hot_list_goes_cold(self):
        policy = HeatWeightedPlacement(heat_half_life=1)
        current = policy.initial_placement(4, 2, 1)
        heat = {0: 8}
        for _ in range(6):  # 8 halves past the 0.5 cold threshold
            proposal = policy.propose(heat, current, 2, 1)
        assert proposal == {}
        assert policy.effective_heat(heat) == {}

    def test_sustained_traffic_stays_hot(self):
        policy = HeatWeightedPlacement(heat_half_life=2)
        current = policy.initial_placement(2, 2, 1)
        cumulative = 0
        for _ in range(10):
            cumulative += 50  # 50 new fetches between every rebalance
            policy.propose({0: cumulative}, current, 2, 1)
        cumulative += 50
        assert policy.effective_heat({0: cumulative})[0] >= 50.0

    def test_decay_reorders_hot_lists_over_time(self):
        """A once-hot list is outranked by one with fresh traffic."""
        policy = HeatWeightedPlacement(heat_half_life=1)
        current = policy.initial_placement(2, 2, 1)
        policy.propose({0: 1000, 1: 0}, current, 2, 1)
        # List 0 goes idle; list 1 accumulates new fetches.
        effective = policy.effective_heat({0: 1000, 1: 600})
        assert effective[1] > effective[0]


class TestClusterMigration:
    def _hot_cluster(self, keys, replication=1):
        """4 lists / 2 servers; lists 0 and 2 (both on server 0) made hot."""
        cluster = ServerCluster(
            keys,
            num_lists=4,
            num_servers=2,
            replication=replication,
            placement=HeatWeightedPlacement(),
        )
        for list_id in range(4):
            for j, trs in enumerate([0.9, 0.6, 0.3]):
                cluster.insert("u", list_id, _element(trs, b"l%dj%d" % (list_id, j)))
        for list_id in (0, 2):
            for _ in range(10):
                cluster.fetch(
                    FetchRequest(principal="u", list_id=list_id, offset=0, count=3)
                )
        return cluster

    def test_rebalance_bumps_epoch_and_moves_a_hot_list(self, keys):
        cluster = self._hot_cluster(keys)
        assert cluster.placement_epoch == 0
        moves = cluster.rebalance()
        assert moves
        assert cluster.placement_epoch == 1
        # The two hot lists no longer share a primary.
        assert cluster.replicas_of(0)[0] != cluster.replicas_of(2)[0]

    def test_migration_preserves_fetch_results(self, keys):
        cluster = self._hot_cluster(keys)
        before = {
            list_id: cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=3)
            )
            for list_id in range(4)
        }
        assert cluster.rebalance()
        for list_id in range(4):
            after = cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=3)
            )
            assert after.elements == before[list_id].elements
            assert after.exhausted == before[list_id].exhausted

    def test_migration_preserves_element_counts(self, keys):
        cluster = self._hot_cluster(keys, replication=2)
        total = cluster.num_elements
        assert cluster.rebalance() is not None
        assert cluster.num_elements == total
        # Every list is stored on exactly `replication` servers.
        for list_id in range(4):
            holders = [
                i
                for i in range(2)
                if cluster.server(i).list_length(list_id) > 0
            ]
            assert len(holders) == 2

    def test_round_robin_cluster_never_rebalances(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=2)
        cluster.insert("u", 0, _element(0.5))
        for _ in range(5):
            cluster.fetch(
                FetchRequest(principal="u", list_id=0, offset=0, count=1)
            )
        assert cluster.rebalance() == {}
        assert cluster.placement_epoch == 0

    def test_list_heat_survives_migration(self, keys):
        cluster = self._hot_cluster(keys)
        heat_before = cluster.list_heat()
        cluster.rebalance()
        heat_after = cluster.list_heat()
        for list_id, count in heat_before.items():
            assert heat_after[list_id] >= count

    def test_rebalance_never_targets_dead_servers(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=6,
            num_servers=3,
            replication=1,
            placement=HeatWeightedPlacement(),
        )
        for list_id in range(6):
            cluster.insert("u", list_id, _element(0.5, b"dd%d" % list_id))
        for list_id, count in [(0, 10), (3, 5), (1, 3)]:
            for _ in range(count):
                cluster.fetch(
                    FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
                )
        cluster.fail_server(2)
        before = {lid: tuple(cluster.replicas_of(lid)) for lid in range(6)}
        moves = cluster.rebalance()
        for list_id, targets in moves.items():
            assert 2 not in targets, "rebalance placed a list on the dead server"
        # Cold lists were not gratuitously moved.
        for list_id in (2, 4, 5):
            assert tuple(cluster.replicas_of(list_id)) == before[list_id]
        # Every fetched list is still fetchable after the rebalance.
        for list_id in (0, 1, 3):
            assert cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
            ).elements

    def test_no_rebalance_when_too_few_live_servers(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=4,
            num_servers=2,
            replication=2,
            placement=HeatWeightedPlacement(),
        )
        cluster.insert("u", 0, _element(0.5))
        cluster.fetch(FetchRequest(principal="u", list_id=0, offset=0, count=1))
        cluster.fail_server(1)
        assert cluster.rebalance() == {}
        assert cluster.placement_epoch == 0

    def test_rebalance_skips_lists_with_no_live_replica(self, keys):
        """A fully-down hot list must not abort the whole rebalance."""
        cluster = ServerCluster(
            keys,
            num_lists=4,
            num_servers=3,
            replication=1,
            placement=HeatWeightedPlacement(),
        )
        for list_id in range(4):
            cluster.insert("u", list_id, _element(0.5, b"ds%d" % list_id))
        # Heat on lists 1 (server 1) and 0, 3 (servers 0 and 0-after-move).
        for list_id, count in [(1, 10), (0, 8), (3, 5)]:
            for _ in range(count):
                cluster.fetch(
                    FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
                )
        cluster.fail_server(1)  # list 1's only replica is gone
        moves = cluster.rebalance()
        assert 1 not in moves  # unreachable list left in place
        # Other hot lists still rebalanced onto the live servers.
        for targets in moves.values():
            assert 1 not in targets

    def test_buggy_policy_proposal_rejected_clearly(self, keys):
        class BadServerPolicy(HeatWeightedPlacement):
            def propose(self, heat, current, num_servers, replication, alive=None):
                return {0: (num_servers,)}

        class BadListPolicy(HeatWeightedPlacement):
            def propose(self, heat, current, num_servers, replication, alive=None):
                return {-1: (0,)}

        class BadArityPolicy(HeatWeightedPlacement):
            def propose(self, heat, current, num_servers, replication, alive=None):
                return {0: (0, 1)}  # replication is 1

        for policy in (BadServerPolicy(), BadListPolicy(), BadArityPolicy()):
            cluster = ServerCluster(
                keys, num_lists=2, num_servers=2, placement=policy
            )
            cluster.insert("u", 0, _element(0.5))
            with pytest.raises(ConfigurationError):
                cluster.rebalance()
            assert cluster.placement_epoch == 0

    def test_partial_migration_failure_still_bumps_epoch(self, keys, monkeypatch):
        """A half-applied rebalance must not keep validating old-epoch routes."""
        cluster = ServerCluster(
            keys,
            num_lists=4,
            num_servers=2,
            replication=1,
            placement=HeatWeightedPlacement(),
        )
        for list_id in range(4):
            cluster.insert("u", list_id, _element(0.5, b"pm%d" % list_id))
        # Heat picked so the greedy proposal moves (at least) two lists.
        for list_id, count in [(0, 10), (2, 10), (1, 2)]:
            for _ in range(count):
                cluster.fetch(
                    FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
                )
        original = ServerCluster._migrate_list
        migrated = []

        def flaky_migrate(self, list_id, targets):
            if migrated:
                raise RuntimeError("migration transport failed")
            migrated.append(list_id)
            return original(self, list_id, targets)

        monkeypatch.setattr(ServerCluster, "_migrate_list", flaky_migrate)
        with pytest.raises(RuntimeError):
            cluster.rebalance()
        assert migrated, "test needs a proposal with at least two moves"
        assert cluster.placement_epoch == 1
