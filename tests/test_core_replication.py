"""Unit tests for the replication subsystem (logs, lag, consistency)."""

import pytest

from repro.core.cluster import ServerCluster
from repro.core.placement import (
    LeastLoadedReads,
    PlacementPolicy,
    PrimaryReads,
    RotatingReads,
    coerce_read_selector,
)
from repro.core.protocol import FetchRequest
from repro.core.replication import LagModel, ReadConsistency
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    QuorumUnavailableError,
    UnavailableError,
)
from repro.index.postings import EncryptedPostingElement


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"r" * 32)
    svc.register("u", {"g"})
    return svc


def _element(trs, payload=b"cipher"):
    return EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)


def _fetch(cluster, list_id, count=8, consistency=None):
    return cluster.fetch(
        FetchRequest(principal="u", list_id=list_id, offset=0, count=count),
        consistency=consistency,
    )


class TestConfig:
    def test_lag_model_validation(self):
        with pytest.raises(ConfigurationError):
            LagModel(fixed_ticks=-1)
        with pytest.raises(ConfigurationError):
            LagModel(per_server={0: -2})
        assert LagModel.coerce(None).is_zero
        assert LagModel.coerce(3).fixed_ticks == 3
        assert not LagModel(per_server={1: 2}).is_zero

    def test_consistency_coercion(self):
        assert ReadConsistency.coerce(None) is ReadConsistency.PRIMARY
        assert ReadConsistency.coerce("one") is ReadConsistency.ONE
        assert ReadConsistency.coerce("QUORUM") is ReadConsistency.QUORUM
        with pytest.raises(ConfigurationError):
            ReadConsistency.coerce("eventual")

    def test_read_strategy_coercion(self):
        assert isinstance(coerce_read_selector(None), PrimaryReads)
        assert isinstance(coerce_read_selector("rotate", seed=7), RotatingReads)
        assert isinstance(coerce_read_selector("least-loaded"), LeastLoadedReads)
        with pytest.raises(ConfigurationError):
            coerce_read_selector("random")

    def test_anti_entropy_validation(self, keys):
        with pytest.raises(ConfigurationError):
            ServerCluster(
                keys, num_lists=2, num_servers=2, anti_entropy_every=0
            )


class TestSynchronousDefault:
    def test_default_config_is_synchronous(self, keys):
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=2)
        assert cluster.replication_manager.is_synchronous()
        cluster.insert("u", 0, _element(0.5))
        # Versions advanced in lockstep; no backlog, no stale reads ever.
        assert cluster.primary_version(0) == 1
        for server_index in cluster.replicas_of(0):
            assert cluster.applied_version(0, server_index) == 1
        assert cluster.replication_backlog() == {}
        response = _fetch(cluster, 0)
        assert response.replica_version == 1
        assert cluster.replication_stats.stale_reads_detected == 0
        assert cluster.replication_stats.ops_logged == 0

    def test_sync_delete_versions_only_on_removal(self, keys):
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=2)
        cluster.insert("u", 0, _element(0.5))
        assert not cluster.delete_element("u", 0, b"no-such-receipt")
        assert cluster.primary_version(0) == 1
        assert cluster.delete_element("u", 0, b"cipher")
        assert cluster.primary_version(0) == 2


class TestLagAndConvergence:
    def _lagged(self, keys, lag=2, **kwargs):
        return ServerCluster(
            keys, num_lists=2, num_servers=2, replication=2, lag=lag, **kwargs
        )

    def test_write_acks_at_primary_and_drains_by_ticks(self, keys):
        cluster = self._lagged(keys, lag=2)
        cluster.insert("u", 0, _element(0.9, b"a"))
        primary, follower = cluster.replicas_of(0)
        assert cluster.server(primary).list_length(0) == 1
        assert cluster.server(follower).list_length(0) == 0
        assert cluster.replication_backlog() == {(0, follower): 1}
        cluster.replication_tick()
        assert cluster.server(follower).list_length(0) == 0  # 1 of 2 ticks
        cluster.replication_tick()
        assert cluster.server(follower).list_length(0) == 1
        assert cluster.replication_backlog() == {}
        assert cluster.replication_stats.follower_ops_applied == 1

    def test_ops_apply_in_log_order(self, keys):
        cluster = self._lagged(keys, lag=1)
        cluster.insert("u", 0, _element(0.9, b"a"))
        cluster.insert("u", 0, _element(0.8, b"b"))
        assert cluster.delete_element("u", 0, b"a")
        cluster.insert("u", 0, _element(0.7, b"c"))
        cluster.run_replication_until_quiet()
        primary, follower = cluster.replicas_of(0)
        assert [e.ciphertext for e in cluster.server(follower).export_list(0)] == [
            e.ciphertext for e in cluster.server(primary).export_list(0)
        ] == [b"b", b"c"]

    def test_per_server_lag(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=LagModel(fixed_ticks=1, per_server={2: 3}),
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.replication_tick()
        assert cluster.applied_version(0, 1) == 1
        assert cluster.applied_version(0, 2) == 0
        cluster.replication_tick()
        cluster.replication_tick()
        assert cluster.applied_version(0, 2) == 1

    def test_paused_follower_holds_then_drains(self, keys):
        cluster = self._lagged(keys, lag=0)
        follower = cluster.replicas_of(0)[1]
        cluster.pause_follower(follower)
        assert not cluster.replication_manager.is_synchronous()
        cluster.insert("u", 0, _element(0.5, b"x"))
        for _ in range(5):
            cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 0
        cluster.resume_follower(follower)
        cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 1
        # Backlog drained: the cluster returns to the synchronous path.
        assert cluster.replication_manager.is_synchronous()

    def test_failed_server_receives_nothing_until_restore(self, keys):
        cluster = self._lagged(keys, lag=1)
        follower = cluster.replicas_of(0)[1]
        cluster.fail_server(follower)
        cluster.insert("u", 0, _element(0.5, b"x"))
        for _ in range(3):
            cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 0
        cluster.restore_server(follower)
        cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 1

    def test_zero_lag_write_with_dead_follower_drains_after_restore(self, keys):
        """Any failure forces the async path even at zero lag: the dead
        follower's copy arrives through the log, not an inline write."""
        cluster = self._lagged(keys, lag=0)
        primary, follower = cluster.replicas_of(0)
        cluster.fail_server(follower)
        cluster.insert("u", 0, _element(0.5, b"x"))
        assert cluster.server(primary).list_length(0) == 1
        assert cluster.server(follower).list_length(0) == 0
        assert cluster.replication_backlog() == {(0, follower): 1}
        cluster.restore_server(follower)
        cluster.replication_tick()
        assert cluster.server(follower).list_length(0) == 1
        assert cluster.replication_manager.is_synchronous()

    def test_bulk_load_replicates_through_log(self, keys):
        cluster = self._lagged(keys, lag=1)
        items = [(0, _element(0.1 * i, b"b%d" % i)) for i in range(1, 6)]
        assert cluster.bulk_load("u", items) == 5
        primary, follower = cluster.replicas_of(0)
        assert cluster.server(primary).list_length(0) == 5
        assert cluster.server(follower).list_length(0) == 0
        cluster.run_replication_until_quiet()
        assert [e.ciphertext for e in cluster.server(follower).export_list(0)] == [
            e.ciphertext for e in cluster.server(primary).export_list(0)
        ]


class TestReadConsistency:
    def _stale_follower_cluster(self, keys):
        """Primary down, follower one insert behind."""
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=8
        )
        cluster.insert("u", 0, _element(0.5, b"old"))
        cluster.run_replication_until_quiet(max_ticks=10)
        cluster.insert("u", 0, _element(0.9, b"new"))
        primary = cluster.replicas_of(0)[0]
        cluster.fail_server(primary)
        return cluster

    def test_one_returns_stale_fast(self, keys):
        cluster = self._stale_follower_cluster(keys)
        response = _fetch(cluster, 0, consistency="one")
        assert [e.ciphertext for e in response.elements] == [b"old"]
        assert response.replica_version == 1
        assert cluster.primary_version(0) == 2
        stats = cluster.replication_stats
        assert stats.stale_reads_detected == 1
        assert stats.max_staleness_seen == 1
        # ... but the divergence was repaired behind the response.
        follower = cluster.replicas_of(0)[1]
        assert cluster.applied_version(0, follower) == 2
        assert stats.repair_ops == 1

    def test_primary_re_serves_after_repair(self, keys):
        cluster = self._stale_follower_cluster(keys)
        response = _fetch(cluster, 0, consistency="primary")
        # Strong even though the primary is down: the follower was caught
        # up from the log and the slice re-served.
        assert [e.ciphertext for e in response.elements] == [b"new", b"old"]
        assert response.replica_version == 2
        assert cluster.replication_stats.read_reserves == 1

    def test_primary_serves_stale_when_unrepairable(self, keys):
        cluster = self._stale_follower_cluster(keys)
        follower = cluster.replicas_of(0)[1]
        cluster.pause_follower(follower)  # partitioned AND primary down
        response = _fetch(cluster, 0, consistency="primary")
        assert [e.ciphertext for e in response.elements] == [b"old"]
        assert response.replica_version == 1

    def test_quorum_serves_version_max(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=LagModel(per_server={1: 1, 2: 10}),
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.replication_tick()  # server 1 catches up; server 2 lags
        cluster.fail_server(cluster.replicas_of(0)[0])
        response = _fetch(cluster, 0, consistency="quorum")
        assert response.replica_version == 1
        assert [e.ciphertext for e in response.elements] == [b"x"]
        assert cluster.replication_stats.version_probes >= 2

    def test_quorum_needs_live_majority(self, keys):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=3, replication=3
        )
        cluster.insert("u", 0, _element(0.5))
        cluster.fail_server(0)
        cluster.fail_server(1)
        with pytest.raises(QuorumUnavailableError) as excinfo:
            _fetch(cluster, 0, consistency="quorum")
        assert excinfo.value.needed == 2
        assert excinfo.value.live == 1
        # Still an UnavailableError subtype for legacy handlers.
        assert isinstance(excinfo.value, UnavailableError)
        # ONE-consistency reads survive on the last live replica.
        assert _fetch(cluster, 0, consistency="one").elements

    def test_bare_server_responses_carry_no_version(self, keys):
        from repro.core.server import ZerberRServer

        server = ZerberRServer(keys, num_lists=1)
        server.insert("u", 0, _element(0.5))
        response = server.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=1)
        )
        assert response.replica_version is None


class TestAntiEntropy:
    def test_sweep_bounds_staleness_of_unread_lists(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=2,
            num_servers=2,
            replication=2,
            lag=100,
            anti_entropy_every=3,
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.insert("u", 1, _element(0.6, b"y"))
        for _ in range(2):
            cluster.replication_tick()
        assert cluster.replication_backlog()  # lag far from elapsed
        cluster.replication_tick()  # third tick: sweep fires
        assert cluster.replication_backlog() == {}
        stats = cluster.replication_stats
        assert stats.anti_entropy_runs == 1
        assert stats.anti_entropy_ops == 2

    def test_sweep_skips_partitioned_followers(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=2,
            replication=2,
            lag=100,
            anti_entropy_every=1,
        )
        follower = cluster.replicas_of(0)[1]
        cluster.pause_follower(follower)
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 0
        cluster.resume_follower(follower)
        cluster.replication_tick()
        assert cluster.applied_version(0, follower) == 1


class _MoveList(PlacementPolicy):
    """Test policy: move list 0 to a fixed replica set on first propose."""

    name = "move-list"

    def __init__(self, targets):
        self.targets = targets

    def initial_placement(self, num_lists, num_servers, replication):
        from repro.core.placement import RoundRobinPlacement

        return RoundRobinPlacement().initial_placement(
            num_lists, num_servers, replication
        )

    def propose(self, heat, current, num_servers, replication, alive=None):
        if tuple(current[0]) != self.targets:
            return {0: self.targets}
        return {}


class TestMigrationThroughLog:
    def test_drain_then_cutover_carries_pending_writes(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=4,
            replication=2,
            lag=5,
            placement=_MoveList(targets=(2, 3)),
        )
        cluster.insert("u", 0, _element(0.9, b"a"))
        cluster.insert("u", 0, _element(0.8, b"b"))
        # Follower (server 1) never caught up; migrate 0 -> servers 2, 3.
        moves = cluster.rebalance()
        assert moves == {0: (2, 3)}
        # New primary was cut over from the drained source: fully caught up.
        assert cluster.applied_version(0, 2) == cluster.primary_version(0) == 2
        assert [e.ciphertext for e in cluster.server(2).export_list(0)] == [
            b"a",
            b"b",
        ]
        # Old replicas no longer hold the list.
        assert cluster.server(0).list_length(0) == 0
        assert cluster.server(1).list_length(0) == 0
        # The new follower converges through the log like any other.
        cluster.run_replication_until_quiet()
        assert cluster.applied_version(0, 3) == 2

    def test_stale_source_cutover_then_write_keeps_gap_ops(self, keys):
        """Regression: a cut-over from a partitioned stale source installs
        a below-head primary; the next write must first catch it up from
        the log — not stamp over the gap and lose the acknowledged op."""
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=4,
            replication=2,
            lag=100,
            placement=_MoveList(targets=(2, 3)),
        )
        cluster.insert("u", 0, _element(0.9, b"acked"))  # head=1, on server 0
        cluster.pause_follower(1)  # stale source-to-be
        cluster.fail_server(0)  # the only head-version replica goes down
        assert cluster.rebalance() == {0: (2, 3)}
        # New primary was registered below the head (empty import).
        assert cluster.primary_version(0) == 1
        cluster.insert("u", 0, _element(0.5, b"later"))
        # The acknowledged pre-cutover op survived on the new primary.
        assert [e.ciphertext for e in cluster.server(2).export_list(0)] == [
            b"acked",
            b"later",
        ]
        assert cluster.applied_version(0, 2) == cluster.primary_version(0) == 2

    def test_write_refused_at_unreachable_gapped_primary(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=4,
            replication=2,
            lag=100,
            placement=_MoveList(targets=(2, 3)),
        )
        cluster.insert("u", 0, _element(0.9, b"acked"))
        cluster.pause_follower(1)
        cluster.fail_server(0)
        cluster.rebalance()
        cluster.pause_follower(2)  # gapped new primary, now unreachable
        with pytest.raises(UnavailableError):
            cluster.insert("u", 0, _element(0.5, b"later"))
        # Nothing was logged or applied for the refused write.
        assert cluster.primary_version(0) == 1
        assert cluster.server(2).list_length(0) == 0

    def test_writes_after_migration_replicate_to_new_followers(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=4,
            replication=2,
            lag=1,
            placement=_MoveList(targets=(2, 3)),
        )
        cluster.insert("u", 0, _element(0.9, b"a"))
        cluster.rebalance()
        cluster.insert("u", 0, _element(0.5, b"z"))
        assert cluster.server(2).list_length(0) == 2  # new primary, inline
        cluster.run_replication_until_quiet()
        assert [e.ciphertext for e in cluster.server(3).export_list(0)] == [
            b"a",
            b"z",
        ]
        # The dropped replicas received nothing.
        assert cluster.server(0).list_length(0) == 0
        assert cluster.server(1).list_length(0) == 0


class TestReadBalancing:
    def _cluster(self, keys, strategy, **kwargs):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            read_strategy=strategy,
            **kwargs,
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        return cluster

    def test_rotation_spreads_reads_deterministically(self, keys):
        cluster = self._cluster(keys, "rotate")
        for _ in range(6):
            _fetch(cluster, 0, count=1)
        assert cluster.per_server_load() == [2, 2, 2]
        # Deterministic under the same seed: a fresh cluster replays the
        # same choices.
        svc = GroupKeyService(master_secret=b"r" * 32)
        svc.register("u", {"g"})
        replay = self._cluster(svc, RotatingReads(seed=0))
        for _ in range(6):
            _fetch(replay, 0, count=1)
        assert replay.per_server_load() == cluster.per_server_load()

    def test_least_loaded_balances(self, keys):
        cluster = self._cluster(keys, "least-loaded")
        for _ in range(9):
            _fetch(cluster, 0, count=1)
        assert max(cluster.per_server_load()) - min(cluster.per_server_load()) <= 1

    def test_balanced_reads_never_serve_stale_under_primary(self, keys):
        cluster = self._cluster(keys, "rotate", lag=10)
        cluster.insert("u", 0, _element(0.9, b"new"))
        # Followers lag by one op; PRIMARY-consistency rotation must only
        # pick caught-up replicas (here: the primary alone).
        for _ in range(4):
            response = _fetch(cluster, 0, consistency="primary")
            assert response.replica_version == cluster.primary_version(0)
            assert [e.ciphertext for e in response.elements] == [b"new", b"x"]
        assert cluster.replication_stats.read_reserves == 0

    def test_primary_strategy_is_seed_behaviour(self, keys):
        cluster = self._cluster(keys, None)
        for _ in range(4):
            _fetch(cluster, 0, count=1)
        primary = cluster.replicas_of(0)[0]
        loads = cluster.per_server_load()
        assert loads[primary] == 4
        assert sum(loads) == 4


class TestRouteValidation:
    def test_route_unknown_consistency_rejected(self, keys):
        cluster = ServerCluster(keys, num_lists=1, num_servers=1)
        with pytest.raises(ConfigurationError):
            cluster.route(0, consistency="gossip")

    def test_applied_version_unknown_holder_rejected(self, keys):
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=1)
        holder = cluster.replicas_of(0)[0]
        other = (holder + 1) % 2
        with pytest.raises(ProtocolError):
            cluster.applied_version(0, other)
