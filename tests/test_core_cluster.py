"""Unit tests for the sharded multi-server deployment."""

import pytest

from repro.core.cluster import ServerCluster
from repro.core.protocol import BatchFetchRequest, FetchRequest
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    ConfigurationError,
    CryptoError,
    ProtocolError,
    UnavailableError,
    UnknownListError,
)
from repro.index.postings import EncryptedPostingElement


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"c" * 32)
    svc.register("u", {"g"})
    return svc


def _element(trs, payload=b"cipher"):
    return EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)


class TestTopology:
    def test_validation(self, keys):
        with pytest.raises(ConfigurationError):
            ServerCluster(keys, num_lists=4, num_servers=0)
        with pytest.raises(ConfigurationError):
            ServerCluster(keys, num_lists=4, num_servers=2, replication=3)
        with pytest.raises(ProtocolError):
            ServerCluster(keys, num_lists=0, num_servers=1)

    def test_replicas_distinct(self, keys):
        cluster = ServerCluster(keys, num_lists=10, num_servers=4, replication=2)
        for list_id in range(10):
            replicas = cluster.replicas_of(list_id)
            assert len(set(replicas)) == 2

    def test_round_robin_primary(self, keys):
        cluster = ServerCluster(keys, num_lists=8, num_servers=4)
        assert cluster.replicas_of(0)[0] == 0
        assert cluster.replicas_of(5)[0] == 1

    def test_unknown_list(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=2)
        with pytest.raises(UnknownListError):
            cluster.replicas_of(99)


class TestDataPlane:
    def test_insert_replicated(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=3, replication=2)
        cluster.insert("u", 1, _element(0.5))
        holders = [
            i for i in range(3) if cluster.server(i).num_elements == 1
        ]
        assert len(holders) == 2

    def test_logical_element_count_deduplicates(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=2, replication=2)
        cluster.insert("u", 0, _element(0.5))
        cluster.insert("u", 1, _element(0.6, b"other"))
        assert cluster.num_elements == 2

    def test_bulk_load_and_fetch(self, keys):
        cluster = ServerCluster(keys, num_lists=3, num_servers=2)
        items = [(0, _element(t, str(t).encode())) for t in (0.2, 0.9, 0.5)]
        assert cluster.bulk_load("u", items) == 3
        response = cluster.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=3)
        )
        assert [e.trs for e in response.elements] == [0.9, 0.5, 0.2]

    def test_failover_to_replica(self, keys):
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=2)
        cluster.insert("u", 0, _element(0.7))
        primary = cluster.replicas_of(0)[0]
        cluster.fail_server(primary)
        response = cluster.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=1)
        )
        assert response.elements[0].trs == 0.7

    def test_all_replicas_down(self, keys):
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=1)
        cluster.insert("u", 0, _element(0.7))
        cluster.fail_server(cluster.replicas_of(0)[0])
        with pytest.raises(ProtocolError):
            cluster.fetch(FetchRequest(principal="u", list_id=0, offset=0, count=1))
        cluster.restore_server(cluster.replicas_of(0)[0])
        assert cluster.fetch(
            FetchRequest(principal="u", list_id=0, offset=0, count=1)
        ).elements

    def test_all_replicas_down_names_the_list(self, keys):
        cluster = ServerCluster(keys, num_lists=3, num_servers=2, replication=2)
        cluster.insert("u", 1, _element(0.7))
        for server_index in cluster.replicas_of(1):
            cluster.fail_server(server_index)
        with pytest.raises(UnavailableError) as excinfo:
            cluster.fetch(FetchRequest(principal="u", list_id=1, offset=0, count=1))
        assert excinfo.value.list_id == 1
        assert excinfo.value.num_replicas == 2
        assert "list 1" in str(excinfo.value)
        # UnavailableError specialises the old undifferentiated failure, so
        # legacy ProtocolError handlers keep working.
        assert isinstance(excinfo.value, ProtocolError)

    def test_insert_many_batches_per_server(self, keys, monkeypatch):
        """Replicated multi-insert costs one call per touched server."""
        cluster = ServerCluster(keys, num_lists=4, num_servers=3, replication=2)
        calls = []
        original = ZerberRServer.insert_many

        def counting_insert_many(self, principal, items):
            items = list(items)
            calls.append(len(items))
            return original(self, principal, items)

        monkeypatch.setattr(ZerberRServer, "insert_many", counting_insert_many)
        items = [
            (list_id, _element(0.1 * (i + 1), b"im%d" % i))
            for i, list_id in enumerate([0, 1, 2, 3, 0, 1])
        ]
        assert cluster.insert_many("u", items) == 6
        # 6 elements x 2 replicas over 3 servers: one call per server, not 12.
        assert len(calls) == 3
        assert sum(calls) == 12
        # Contents landed exactly as per-element replicated inserts would.
        assert cluster.num_elements == 6

    def test_insert_many_rejected_batch_touches_no_server(self, keys):
        """Validation failures must not leave replicas divergent."""
        cluster = ServerCluster(keys, num_lists=2, num_servers=2, replication=2)
        bad_group = EncryptedPostingElement(
            ciphertext=b"bad", group="not-a-group", trs=0.5
        )
        with pytest.raises(CryptoError):
            cluster.insert_many("u", [(0, _element(0.9)), (1, bad_group)])
        assert cluster.num_elements == 0
        with pytest.raises(ProtocolError):
            cluster.insert_many(
                "u",
                [
                    (0, _element(0.9)),
                    (1, EncryptedPostingElement(ciphertext=b"x", group="g", trs=None)),
                ],
            )
        assert cluster.num_elements == 0

    def test_bulk_load_rejected_batch_touches_no_server(self, keys):
        """bulk_load gets the same all-or-nothing validation as insert_many."""
        cluster = ServerCluster(keys, num_lists=2, num_servers=3, replication=2)
        bad = EncryptedPostingElement(
            ciphertext=b"bad", group="not-a-group", trs=0.5
        )
        with pytest.raises(CryptoError):
            cluster.bulk_load("u", [(0, _element(0.9)), (1, bad)])
        assert cluster.num_elements == 0

    def test_view_stats_aggregates_across_servers(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=2)
        for list_id in range(4):
            cluster.insert("u", list_id, _element(0.5, b"vs%d" % list_id))
        for list_id in range(4):
            cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
            )
            cluster.fetch(
                FetchRequest(principal="u", list_id=list_id, offset=0, count=1)
            )
        aggregated = cluster.view_stats()
        per_server = [cluster.server(i).view_stats for i in range(2)]
        assert aggregated.full_builds == sum(s.full_builds for s in per_server)
        assert aggregated.hits == sum(s.hits for s in per_server)
        assert aggregated.full_builds == 4  # one cold build per list
        assert aggregated.hits == 4  # one warm hit per list


class TestBatchFetchCluster:
    def _populated(self, keys, num_servers=2, replication=1):
        cluster = ServerCluster(
            keys, num_lists=4, num_servers=num_servers, replication=replication
        )
        for list_id in range(4):
            for j, trs in enumerate([0.9, 0.6, 0.3]):
                cluster.insert(
                    "u", list_id, _element(trs, b"l%dj%d" % (list_id, j))
                )
        return cluster

    def test_batch_spans_shards(self, keys):
        cluster = self._populated(keys)
        batch = BatchFetchRequest.for_slices(
            "u", [(0, 0, 2), (1, 0, 2), (2, 1, 2), (3, 0, 1)]
        )
        batched = cluster.batch_fetch(batch)
        assert len(batched) == 4
        for request, response in zip(batch.requests, batched.responses):
            single = cluster.fetch(request)
            assert single.elements == response.elements
            assert single.exhausted == response.exhausted

    def test_one_sub_batch_per_touched_server(self, keys):
        cluster = self._populated(keys)
        batch = BatchFetchRequest.for_slices(
            "u", [(0, 0, 1), (2, 0, 1), (1, 0, 1), (3, 0, 1)]
        )
        cluster.batch_fetch(batch)
        # Lists 0/2 shard to server 0, lists 1/3 to server 1; each server
        # must have served its two slices as ONE batch (same batch_id).
        for server_index in range(2):
            observations = cluster.observations_at(server_index)
            assert len(observations) == 2
            assert observations[0].batch_id == observations[1].batch_id
            assert observations[0].batch_id is not None

    def test_batch_failover_to_live_replica(self, keys):
        cluster = self._populated(keys, num_servers=2, replication=2)
        primary = cluster.replicas_of(0)[0]
        cluster.fail_server(primary)
        batched = cluster.batch_fetch(
            BatchFetchRequest.for_slices("u", [(0, 0, 1), (1, 0, 1)])
        )
        assert [r.elements[0].trs for r in batched] == [0.9, 0.9]
        # Nothing was served by the failed primary.
        assert all(
            obs.batch_id is not None
            for obs in cluster.observations_at((primary + 1) % 2)
        )

    def test_batch_fails_when_all_replicas_down(self, keys):
        cluster = self._populated(keys, num_servers=2, replication=1)
        cluster.fail_server(cluster.replicas_of(0)[0])
        with pytest.raises(ProtocolError):
            cluster.batch_fetch(
                BatchFetchRequest.for_slices("u", [(0, 0, 1), (1, 0, 1)])
            )
        # Lists on the surviving server still batch-fetch fine.
        batched = cluster.batch_fetch(
            BatchFetchRequest.for_slices("u", [(1, 0, 1), (3, 0, 1)])
        )
        assert len(batched) == 2


class TestAdversaryModel:
    def test_visible_fraction_single_server(self, keys):
        cluster = ServerCluster(keys, num_lists=100, num_servers=4)
        fraction = cluster.visible_fraction([0])
        assert fraction == pytest.approx(0.25)

    def test_visible_fraction_grows_with_replication(self, keys):
        plain = ServerCluster(keys, num_lists=100, num_servers=4, replication=1)
        replicated = ServerCluster(keys, num_lists=100, num_servers=4, replication=2)
        assert replicated.visible_fraction([0]) > plain.visible_fraction([0])

    def test_visible_fraction_all_servers(self, keys):
        cluster = ServerCluster(keys, num_lists=10, num_servers=3)
        assert cluster.visible_fraction([0, 1, 2]) == pytest.approx(1.0)

    def test_unknown_server_rejected(self, keys):
        cluster = ServerCluster(keys, num_lists=10, num_servers=2)
        with pytest.raises(ConfigurationError):
            cluster.visible_fraction([5])

    def test_observations_per_server(self, keys):
        cluster = ServerCluster(keys, num_lists=4, num_servers=2)
        cluster.insert("u", 0, _element(0.5))
        cluster.fetch(FetchRequest(principal="u", list_id=0, offset=0, count=1))
        primary = cluster.replicas_of(0)[0]
        other = (primary + 1) % 2
        assert len(cluster.observations_at(primary)) == 1
        assert cluster.observations_at(other) == []
