"""Unit tests for the document/corpus model."""

import numpy as np
import pytest

from repro.corpus.documents import Corpus, Document, corpus_from_texts


class TestDocument:
    def test_text_document_stats(self):
        doc = Document(doc_id="d1", text="alpha beta alpha")
        stats = doc.stats()
        assert stats.tf("alpha") == 2
        assert stats.length == 3

    def test_counts_document_stats(self):
        doc = Document(doc_id="d1", counts={"a": 2})
        assert doc.stats().length == 2

    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            Document(doc_id="d1")
        with pytest.raises(ValueError):
            Document(doc_id="d1", text="x", counts={"x": 1})

    def test_default_group(self):
        assert Document(doc_id="d1", text="x").group == "public"


class TestCorpus:
    def _corpus(self):
        return Corpus(
            [
                Document(doc_id="a", group="g1", counts={"x": 1}),
                Document(doc_id="b", group="g1", counts={"y": 2}),
                Document(doc_id="c", group="g2", counts={"x": 3}),
            ]
        )

    def test_len_and_iteration(self):
        corpus = self._corpus()
        assert len(corpus) == 3
        assert [d.doc_id for d in corpus] == ["a", "b", "c"]

    def test_duplicate_id_rejected(self):
        corpus = self._corpus()
        with pytest.raises(ValueError):
            corpus.add(Document(doc_id="a", counts={"z": 1}))

    def test_lookup(self):
        corpus = self._corpus()
        assert corpus.document("b").group == "g1"
        with pytest.raises(KeyError):
            corpus.document("zzz")

    def test_stats_cached(self):
        corpus = self._corpus()
        assert corpus.stats("a") is corpus.stats("a")

    def test_groups(self):
        assert self._corpus().groups() == {"g1", "g2"}

    def test_documents_in_group(self):
        corpus = self._corpus()
        assert [d.doc_id for d in corpus.documents_in_group("g1")] == ["a", "b"]

    def test_contains(self):
        corpus = self._corpus()
        assert "a" in corpus
        assert "zzz" not in corpus

    def test_sample_size(self):
        corpus = self._corpus()
        sample = corpus.sample(0.67, np.random.default_rng(1))
        assert len(sample) == 2

    def test_sample_minimum_one(self):
        corpus = self._corpus()
        assert len(corpus.sample(0.01, np.random.default_rng(1))) == 1

    def test_sample_invalid_fraction(self):
        with pytest.raises(ValueError):
            self._corpus().sample(0.0, np.random.default_rng(1))

    def test_all_stats_order(self):
        corpus = self._corpus()
        assert [s.doc_id for s in corpus.all_stats()] == ["a", "b", "c"]


class TestCorpusFromTexts:
    def test_builds_documents(self):
        corpus = corpus_from_texts(["hello world", "goodbye"])
        assert len(corpus) == 2
        assert corpus.stats("d000000").tf("hello") == 1

    def test_groups_assigned(self):
        corpus = corpus_from_texts(["a", "b"], groups=["g1", "g2"])
        assert corpus.document("d000001").group == "g2"

    def test_group_length_mismatch(self):
        with pytest.raises(ValueError):
            corpus_from_texts(["a"], groups=["g1", "g2"])
