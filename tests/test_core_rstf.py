"""Unit tests for RSTF construction and the published model (Eq. 5–8)."""

import numpy as np
import pytest

from repro.core.rstf import Rstf, RstfModel, RstfTrainer, TrainerConfig, train_rstf
from repro.errors import TrainingError
from repro.stats.uniformness import uniformness_variance
from repro.text.analysis import DocumentStats


class TestRstf:
    SCORES = [0.05, 0.1, 0.1, 0.2, 0.35, 0.5]

    def test_requires_training_scores(self):
        with pytest.raises(TrainingError):
            Rstf(mus=(), sigma=10.0)

    def test_requires_positive_sigma(self):
        with pytest.raises(TrainingError):
            Rstf(mus=(0.1,), sigma=0.0)

    def test_rejects_negative_scores(self):
        with pytest.raises(TrainingError):
            Rstf(mus=(-0.1,), sigma=1.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(TrainingError):
            Rstf(mus=(0.1,), sigma=1.0, kind="spline")

    def test_from_scores_sorts(self):
        rstf = Rstf.from_scores([0.3, 0.1, 0.2], sigma=5.0)
        assert rstf.mus == (0.1, 0.2, 0.3)

    def test_output_in_unit_interval(self):
        rstf = train_rstf(self.SCORES, sigma=50.0)
        values = rstf.transform(np.linspace(0, 1, 50))
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    def test_strictly_monotonic(self):
        # Property 3 of §4.2: order preservation.
        rstf = train_rstf(self.SCORES, sigma=80.0)
        x = np.linspace(0.0, 0.8, 200)
        values = rstf.transform(x)
        assert np.all(np.diff(values) > 0)

    def test_erf_kind_also_monotonic(self):
        # Strict monotonicity holds until float64 saturation; test the
        # region around the training scores (non-decreasing everywhere).
        rstf = train_rstf(self.SCORES, sigma=80.0, kind="erf")
        x = np.linspace(0.0, 0.8, 100)
        values = rstf.transform(x)
        assert np.all(np.diff(values) >= 0)
        interior = x <= 0.55
        assert np.all(np.diff(values[interior]) > 0)

    def test_scalar_transform_returns_float(self):
        rstf = train_rstf(self.SCORES, sigma=50.0)
        assert isinstance(rstf.transform(0.2), float)

    def test_callable(self):
        rstf = train_rstf(self.SCORES, sigma=50.0)
        assert rstf(0.2) == rstf.transform(0.2)

    def test_midpoint_at_half_for_single_score(self):
        rstf = train_rstf([0.3], sigma=40.0)
        assert rstf.transform(0.3) == pytest.approx(0.5)

    def test_uniformising_effect(self):
        # Transforming the training distribution itself through a fitted
        # RSTF must be much closer to uniform than the raw scores scaled
        # to [0,1].
        rng = np.random.default_rng(4)
        scores = rng.beta(2, 8, size=400)  # skewed like normalized TF
        rstf = train_rstf(scores, sigma=len(scores) / (scores.max() - scores.min()))
        raw_scaled = (scores - scores.min()) / (scores.max() - scores.min())
        transformed = rstf.transform(scores)
        assert uniformness_variance(transformed) < uniformness_variance(raw_scaled) / 5


class TestRstfModel:
    def _model(self):
        return RstfModel(
            {
                "seen": train_rstf([0.1, 0.2, 0.4], sigma=30.0),
            }
        )

    def test_get_known(self):
        assert self._model().get("seen") is not None

    def test_get_unknown_is_none(self):
        assert self._model().get("unseen") is None

    def test_contains(self):
        model = self._model()
        assert "seen" in model
        assert "unseen" not in model

    def test_transform_known_term(self):
        model = self._model()
        assert 0.0 < model.transform("seen", 0.2) < 1.0

    def test_transform_unseen_requires_callback(self):
        with pytest.raises(TrainingError):
            self._model().transform("unseen", 0.2)

    def test_transform_unseen_uses_callback(self):
        value = self._model().transform("unseen", 0.2, unseen_trs=lambda t: 0.77)
        assert value == 0.77

    def test_unseen_callback_range_validated(self):
        with pytest.raises(TrainingError):
            self._model().transform("unseen", 0.2, unseen_trs=lambda t: 1.5)


class TestTrainer:
    def _docs(self, rng, n=40):
        docs = []
        for i in range(n):
            total = int(rng.integers(20, 60))
            a = int(rng.integers(1, 10))
            b = int(rng.integers(1, 5))
            docs.append(
                DocumentStats.from_counts(
                    f"d{i}", {"alpha": a, "beta": b, "filler": max(total - a - b, 1)}
                )
            )
        return docs

    def test_trains_all_seen_terms(self):
        rng = np.random.default_rng(1)
        model = RstfTrainer(TrainerConfig(sigma_strategy="heuristic")).train_from_documents(
            self._docs(rng)
        )
        assert model.terms() == {"alpha", "beta", "filler"}

    def test_cv_strategy_runs(self):
        rng = np.random.default_rng(2)
        config = TrainerConfig(
            sigma_strategy="cv", sigma_grid=(5.0, 50.0, 500.0), seed=3
        )
        model = RstfTrainer(config).train_from_documents(self._docs(rng))
        assert model.num_terms == 3

    def test_fixed_strategy_uses_given_sigma(self):
        rng = np.random.default_rng(3)
        config = TrainerConfig(sigma_strategy="fixed", fixed_sigma=123.0)
        model = RstfTrainer(config).train_from_documents(self._docs(rng))
        assert model.get("alpha").sigma == 123.0

    def test_few_scores_fall_back_to_heuristic(self):
        config = TrainerConfig(sigma_strategy="cv", min_cv_scores=100)
        model = RstfTrainer(config).train_from_scores({"t": [0.1, 0.2, 0.3]})
        assert model.get("t") is not None

    def test_empty_training_rejected(self):
        with pytest.raises(TrainingError):
            RstfTrainer().train_from_scores({})

    def test_config_validation(self):
        with pytest.raises(TrainingError):
            TrainerConfig(sigma_strategy="magic")
        with pytest.raises(TrainingError):
            TrainerConfig(fixed_sigma=-1.0)
        with pytest.raises(TrainingError):
            TrainerConfig(min_cv_scores=2)

    def test_deterministic(self):
        scores = {"t": [0.1, 0.15, 0.2, 0.3, 0.35, 0.4, 0.5, 0.6]}
        config = TrainerConfig(sigma_strategy="cv", sigma_grid=(10.0, 100.0), seed=9)
        a = RstfTrainer(config).train_from_scores(scores)
        b = RstfTrainer(config).train_from_scores(scores)
        assert a.get("t").sigma == b.get("t").sigma
