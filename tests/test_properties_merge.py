"""Property-based tests for merging schemes: Def. 2 must hold for every
feasible vocabulary, and plans must always partition the term set."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.index.merge import bfm_merge, greedy_pairing_merge, random_merge

probabilities_strategy = st.dictionaries(
    keys=st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    values=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=60,
)

r_strategy = st.floats(min_value=1.1, max_value=20.0)


def _feasible(probabilities, r):
    """The whole vocabulary must be able to satisfy Def. 2 at all."""
    return sum(probabilities.values()) >= 1.0 / r


@given(probabilities=probabilities_strategy, r=r_strategy)
@settings(max_examples=200, deadline=None)
def test_bfm_partitions_and_satisfies_def2(probabilities, r):
    assume(_feasible(probabilities, r))
    plan = bfm_merge(probabilities, r)
    assert plan.all_terms() == set(probabilities)
    plan.verify(probabilities)


@given(probabilities=probabilities_strategy, r=r_strategy, seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_random_merge_partitions_and_satisfies_def2(probabilities, r, seed):
    assume(_feasible(probabilities, r))
    plan = random_merge(probabilities, r, rng=np.random.default_rng(seed))
    assert plan.all_terms() == set(probabilities)
    plan.verify(probabilities)


@given(probabilities=probabilities_strategy, r=r_strategy)
@settings(max_examples=100, deadline=None)
def test_greedy_merge_partitions_and_satisfies_def2(probabilities, r):
    assume(_feasible(probabilities, r))
    plan = greedy_pairing_merge(probabilities, r)
    assert plan.all_terms() == set(probabilities)
    plan.verify(probabilities)


@given(probabilities=probabilities_strategy, r=r_strategy)
@settings(max_examples=100, deadline=None)
def test_bfm_groups_are_frequency_contiguous(probabilities, r):
    """BFM's defining invariant: each group is a contiguous run of the
    descending-frequency ranking."""
    assume(_feasible(probabilities, r))
    plan = bfm_merge(probabilities, r)
    ordered = sorted(probabilities, key=lambda t: (-probabilities[t], t))
    rank = {t: i for i, t in enumerate(ordered)}
    for group in plan.groups:
        ranks = sorted(rank[t] for t in group)
        assert ranks == list(range(ranks[0], ranks[-1] + 1))


@given(probabilities=probabilities_strategy, r=r_strategy)
@settings(max_examples=100, deadline=None)
def test_stricter_r_never_more_lists(probabilities, r):
    """Lowering r (stricter confidentiality) can only merge more."""
    assume(_feasible(probabilities, 1.1))
    strict = bfm_merge(probabilities, 1.1)
    loose = bfm_merge(probabilities, max(r, 1.2))
    assert strict.num_lists <= loose.num_lists
