"""Unit tests for the order-preserving mapping baseline ([21])."""

import numpy as np
import pytest

from repro.baselines.ops_index import OrderPreservingIndex
from repro.errors import UnknownTermError
from repro.stats.uniformness import uniformness_variance
from repro.text.analysis import DocumentStats


@pytest.fixture(scope="module")
def index(corpus):
    return OrderPreservingIndex.build(corpus)


class TestOrderPreservation:
    def test_topk_matches_ordinary(self, index, corpus, medium_term, ordinary_index):
        expected_scores = [
            e.rscore for e in ordinary_index.top_k(medium_term, 5)
        ]
        got_ids = index.top_k(medium_term, 5)
        got_scores = [
            corpus.stats(d).rscore(medium_term) for d in got_ids
        ]
        assert got_scores == pytest.approx(expected_scores)

    def test_mapped_scores_descending(self, index, medium_term):
        scores = index.visible_scores(medium_term)
        assert scores == sorted(scores, reverse=True)

    def test_mapped_scores_near_uniform(self, index, corpus, frequent_term):
        # The OPS property: per-term scores uniformised over (0, 1).
        scores = index.visible_scores(frequent_term)
        if len(scores) >= 20:
            assert uniformness_variance(scores) < 0.02


class TestLeakage:
    def test_df_fully_visible(self, index, corpus, medium_term):
        true_df = len(
            [d for d in corpus.doc_ids() if corpus.stats(d).tf(medium_term) > 0]
        )
        # The paper's critique: no merging, so df is exposed exactly.
        assert index.visible_document_frequency(medium_term) == true_df


class TestInserts:
    def test_in_range_insert_no_rebuild(self, corpus):
        index = OrderPreservingIndex.build(corpus)
        # Construct a doc whose scores sit strictly inside each term's range.
        term = None
        for candidate in index._support:
            support = index._support[candidate]
            if len(support) >= 3 and support[0] < support[len(support) // 2] < support[-1]:
                term = candidate
                break
        assert term is not None
        mid_score = index._support[term][len(index._support[term]) // 2]
        tf = 1
        length = max(int(round(1 / mid_score)), 2)
        doc = DocumentStats.from_counts("new-doc", {term: tf, "\0filler\0": length - tf})
        before = index.rebuilds
        index.insert(doc)
        # The known term needed no rebuild; the never-seen filler term did.
        assert index.rebuilds == before + 1

    def test_out_of_range_insert_rebuilds(self, corpus):
        index = OrderPreservingIndex.build(corpus)
        term = next(iter(index._support))
        doc = DocumentStats.from_counts("d-new", {term: 1})  # score 1.0, out of range
        before = index.rebuilds
        rebuilt = index.insert(doc)
        assert rebuilt >= 1
        assert index.rebuilds > before

    def test_insert_preserves_order(self, corpus, medium_term):
        index = OrderPreservingIndex.build(corpus)
        doc = DocumentStats.from_counts("d-ins", {medium_term: 1, "xfill": 3})
        index.insert(doc)
        scores = index.visible_scores(medium_term)
        assert scores == sorted(scores, reverse=True)
        assert "d-ins" in index.top_k(medium_term, 10_000)


class TestErrors:
    def test_unknown_term(self, index):
        with pytest.raises(UnknownTermError):
            index.top_k("no-such-term", 1)
        with pytest.raises(UnknownTermError):
            index.visible_scores("no-such-term")
        with pytest.raises(UnknownTermError):
            index.visible_document_frequency("no-such-term")

    def test_invalid_k(self, index, medium_term):
        with pytest.raises(ValueError):
            index.top_k(medium_term, 0)
