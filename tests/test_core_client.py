"""Unit tests for the Zerber+R client (insert + query protocol)."""

import pytest

from repro.core.client import ZerberRClient
from repro.core.protocol import ResponsePolicy
from repro.core.rstf import RstfModel, train_rstf
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import UnknownTermError
from repro.index.merge import MergePlan
from repro.text.analysis import DocumentStats


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"s" * 32)
    svc.register("alice", {"g1"})
    svc.register("bob", {"g2"})
    svc.register("root", {"g1", "g2"})
    return svc


@pytest.fixture()
def plan():
    return MergePlan(groups=(("apple", "pear"), ("plum",)), r=2.0)


@pytest.fixture()
def model():
    return RstfModel(
        {
            "apple": train_rstf([0.1, 0.2, 0.3, 0.5], sigma=20.0),
            "pear": train_rstf([0.05, 0.15, 0.4], sigma=20.0),
            "plum": train_rstf([0.2, 0.6], sigma=20.0),
        }
    )


@pytest.fixture()
def server(keys):
    return ZerberRServer(keys, num_lists=2)


def _client(principal, keys, server, model, plan):
    return ZerberRClient(
        principal=principal,
        key_service=keys,
        server=server,
        rstf_model=model,
        merge_plan=plan,
    )


@pytest.fixture()
def alice(keys, server, model, plan):
    return _client("alice", keys, server, model, plan)


@pytest.fixture()
def bob(keys, server, model, plan):
    return _client("bob", keys, server, model, plan)


@pytest.fixture()
def root(keys, server, model, plan):
    return _client("root", keys, server, model, plan)


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


class TestInsert:
    def test_index_document_counts_elements(self, alice, server):
        sent = alice.index_document(_doc("d1", {"apple": 2, "plum": 1}), "g1")
        assert sent == 2
        assert server.num_elements == 2

    def test_build_element_routes_to_merged_list(self, alice, plan):
        list_id, element = alice.build_element(
            "plum", _doc("d1", {"plum": 1}), "g1"
        )
        assert list_id == plan.list_of("plum")
        assert element.group == "g1"
        assert 0.0 <= element.trs <= 1.0

    def test_absent_term_rejected(self, alice):
        with pytest.raises(UnknownTermError):
            alice.build_element("apple", _doc("d1", {"plum": 1}), "g1")

    def test_term_outside_plan_rejected(self, alice):
        with pytest.raises(UnknownTermError):
            alice.build_element("mango", _doc("d1", {"mango": 1}), "g1")

    def test_trs_monotone_in_score(self, alice):
        _, low = alice.build_element("apple", _doc("d1", {"apple": 1, "pear": 9}), "g1")
        _, high = alice.build_element("apple", _doc("d2", {"apple": 9, "pear": 1}), "g1")
        assert high.trs > low.trs

    def test_unseen_term_trs_deterministic_per_element(self, keys, server, model):
        plan = MergePlan(groups=(("apple", "pear"), ("plum", "mango")), r=2.0)
        client = _client("alice", keys, server, model, plan)
        doc = _doc("d1", {"mango": 1})
        _, a = client.build_element("mango", doc, "g1")
        _, b = client.build_element("mango", doc, "g1")
        # Re-inserting the same document is idempotent.
        assert a.trs == b.trs

    def test_unseen_term_trs_distinct_across_documents(self, keys, server, model):
        plan = MergePlan(groups=(("apple", "pear"), ("plum", "mango")), r=2.0)
        client = _client("alice", keys, server, model, plan)
        _, a = client.build_element("mango", _doc("d1", {"mango": 1}), "g1")
        _, b = client.build_element("mango", _doc("d2", {"mango": 2, "apple": 1}), "g1")
        # Per-element pseudo-randomness keeps the TRS stream tie-free.
        assert a.trs != b.trs


class TestQuery:
    def _populate(self, alice, bob):
        # g1 documents: apple-heavy.
        alice.index_document(_doc("a1", {"apple": 8, "pear": 2}), "g1")
        alice.index_document(_doc("a2", {"apple": 1, "pear": 9}), "g1")
        # g2 documents.
        bob.index_document(_doc("b1", {"apple": 5, "plum": 5}), "g2")

    def test_topk_order_matches_rscore(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=3)
        assert result.doc_ids() == ["a1", "b1", "a2"]

    def test_access_control_limits_results(self, alice, bob):
        self._populate(alice, bob)
        result = alice.query("apple", k=3)
        assert result.doc_ids() == ["a1", "a2"]

    def test_trace_records_requests(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=1, policy=ResponsePolicy(initial_size=1))
        assert result.trace.num_requests >= 1
        assert result.trace.elements_transferred >= 1

    def test_follow_up_doubling(self, alice, bob, root):
        self._populate(alice, bob)
        # k=3 matches but initial size 1 forces follow-ups: sizes 1,2,4...
        result = root.query("apple", k=3, policy=ResponsePolicy(initial_size=1))
        assert result.trace.num_requests >= 2
        assert len(result.hits) == 3

    def test_unsatisfiable_query_exhausts_list(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("plum", k=5)
        assert len(result.hits) == 1
        assert not result.trace.satisfied

    def test_default_policy_is_b_equals_k(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=2)
        # initial response size == k == 2
        assert result.trace.elements_transferred >= 2

    def test_unknown_term(self, root):
        with pytest.raises(UnknownTermError):
            root.query("mango", k=1)

    def test_invalid_k(self, root):
        with pytest.raises(ValueError):
            root.query("apple", k=0)

    def test_hits_carry_group_and_score(self, alice, bob, root):
        self._populate(alice, bob)
        hit = root.query("apple", k=1).hits[0]
        assert hit.group == "g1"
        assert hit.rscore == pytest.approx(0.8)


class TestMultiTerm:
    def test_aggregation(self, alice, bob, root):
        alice.index_document(_doc("a1", {"apple": 5, "pear": 5}), "g1")
        alice.index_document(_doc("a2", {"apple": 9, "pear": 1}), "g1")
        ranked, traces = root.query_multi(["apple", "pear"], k=2)
        assert len(traces) == 2
        # a1 has balanced scores (0.5 + 0.5) beating a2 (0.9 + 0.1)? equal —
        # both sum to 1.0; tie-break by doc id puts a1 first.
        assert ranked[0][0] == "a1"
        assert ranked[0][1] == pytest.approx(1.0)


class TestBatchedMultiTerm:
    def _populate(self, alice, bob):
        alice.index_document(_doc("a1", {"apple": 5, "pear": 5}), "g1")
        alice.index_document(_doc("a2", {"apple": 9, "pear": 1}), "g1")
        alice.index_document(_doc("a3", {"apple": 2, "pear": 7, "plum": 1}), "g1")
        bob.index_document(_doc("b1", {"apple": 5, "plum": 5}), "g2")

    def test_batched_matches_sequential_per_term_queries(self, alice, bob, root):
        self._populate(alice, bob)
        terms = ["apple", "pear", "plum"]
        k = 3
        result = root.query_multi_batched(terms, k)
        expected_scores: dict[str, float] = {}
        for term, trace in zip(terms, result.traces):
            single = root.query(term, k)
            assert single.trace.num_requests == trace.num_requests, term
            assert single.trace.elements_transferred == trace.elements_transferred
            assert single.trace.satisfied == trace.satisfied
            for hit in single.hits:
                expected_scores[hit.doc_id] = (
                    expected_scores.get(hit.doc_id, 0.0) + hit.rscore
                )
        expected = sorted(
            expected_scores.items(), key=lambda kv: (-kv[1], kv[0])
        )[:k]
        assert list(result.ranked) == expected

    def test_lockstep_rounds_are_max_not_sum(self, alice, bob, root):
        self._populate(alice, bob)
        # b=1 forces several doubling rounds per term.
        policy = ResponsePolicy(initial_size=1)
        result = root.query_multi_batched(["apple", "pear"], k=3, policy=policy)
        per_term = [t.num_requests for t in result.traces]
        assert result.batch_trace.num_rounds == max(per_term)
        assert result.batch_trace.num_subfetches == sum(per_term)
        assert result.batch_trace.requests_saved() > 0

    def test_fewer_server_calls_than_sequential(self, alice, bob, root, server):
        self._populate(alice, bob)
        server.clear_observations()
        result = root.query_multi_batched(["apple", "pear", "plum"], k=2)
        batch_ids = {obs.batch_id for obs in server.observations}
        assert None not in batch_ids
        # One server call per round: distinct batch ids == num_rounds, and
        # strictly fewer than the slices served.
        assert len(batch_ids) == result.batch_trace.num_rounds
        assert len(batch_ids) < len(server.observations)

    def test_wrapper_query_multi_uses_batched_path(self, alice, bob, root, server):
        self._populate(alice, bob)
        server.clear_observations()
        ranked, traces = root.query_multi(["apple", "pear"], k=2)
        assert len(traces) == 2
        assert all(obs.batch_id is not None for obs in server.observations)

    def test_duplicate_terms_keep_sequential_semantics(self, alice, bob, root):
        self._populate(alice, bob)
        ranked_once, _ = root.query_multi(["apple"], k=2)
        ranked_twice, traces = root.query_multi(["apple", "apple"], k=2)
        assert len(traces) == 2
        assert ranked_twice[0][1] == pytest.approx(2 * ranked_once[0][1])

    def test_empty_term_list(self, root):
        result = root.query_multi_batched([], k=3)
        assert result.ranked == ()
        assert result.batch_trace.num_rounds == 0

    def test_max_requests_zero_issues_no_fetches(self, alice, bob, root, server):
        # Old for-range semantics: max_requests=0 contacts no server.
        self._populate(alice, bob)
        server.clear_observations()
        single = root.query("apple", k=2, max_requests=0)
        batched = root.query_multi_batched(["apple", "pear"], k=2, max_requests=0)
        assert single.hits == ()
        assert not single.trace.satisfied
        assert batched.ranked == ()
        assert batched.batch_trace.num_rounds == 0
        assert server.observations == []

    def test_unknown_term_rejected_before_any_fetch(self, root, server):
        server.clear_observations()
        with pytest.raises(UnknownTermError):
            root.query_multi_batched(["apple", "mango"], k=1)
        assert server.observations == []
