"""Unit tests for the Zerber+R client (insert + query protocol)."""

import pytest

from repro.core.client import ZerberRClient
from repro.core.protocol import ResponsePolicy
from repro.core.rstf import RstfModel, train_rstf
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import UnknownTermError
from repro.index.merge import MergePlan
from repro.text.analysis import DocumentStats


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"s" * 32)
    svc.register("alice", {"g1"})
    svc.register("bob", {"g2"})
    svc.register("root", {"g1", "g2"})
    return svc


@pytest.fixture()
def plan():
    return MergePlan(groups=(("apple", "pear"), ("plum",)), r=2.0)


@pytest.fixture()
def model():
    return RstfModel(
        {
            "apple": train_rstf([0.1, 0.2, 0.3, 0.5], sigma=20.0),
            "pear": train_rstf([0.05, 0.15, 0.4], sigma=20.0),
            "plum": train_rstf([0.2, 0.6], sigma=20.0),
        }
    )


@pytest.fixture()
def server(keys):
    return ZerberRServer(keys, num_lists=2)


def _client(principal, keys, server, model, plan):
    return ZerberRClient(
        principal=principal,
        key_service=keys,
        server=server,
        rstf_model=model,
        merge_plan=plan,
    )


@pytest.fixture()
def alice(keys, server, model, plan):
    return _client("alice", keys, server, model, plan)


@pytest.fixture()
def bob(keys, server, model, plan):
    return _client("bob", keys, server, model, plan)


@pytest.fixture()
def root(keys, server, model, plan):
    return _client("root", keys, server, model, plan)


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


class TestInsert:
    def test_index_document_counts_elements(self, alice, server):
        sent = alice.index_document(_doc("d1", {"apple": 2, "plum": 1}), "g1")
        assert sent == 2
        assert server.num_elements == 2

    def test_build_element_routes_to_merged_list(self, alice, plan):
        list_id, element = alice.build_element(
            "plum", _doc("d1", {"plum": 1}), "g1"
        )
        assert list_id == plan.list_of("plum")
        assert element.group == "g1"
        assert 0.0 <= element.trs <= 1.0

    def test_absent_term_rejected(self, alice):
        with pytest.raises(UnknownTermError):
            alice.build_element("apple", _doc("d1", {"plum": 1}), "g1")

    def test_term_outside_plan_rejected(self, alice):
        with pytest.raises(UnknownTermError):
            alice.build_element("mango", _doc("d1", {"mango": 1}), "g1")

    def test_trs_monotone_in_score(self, alice):
        _, low = alice.build_element("apple", _doc("d1", {"apple": 1, "pear": 9}), "g1")
        _, high = alice.build_element("apple", _doc("d2", {"apple": 9, "pear": 1}), "g1")
        assert high.trs > low.trs

    def test_unseen_term_trs_deterministic_per_element(self, keys, server, model):
        plan = MergePlan(groups=(("apple", "pear"), ("plum", "mango")), r=2.0)
        client = _client("alice", keys, server, model, plan)
        doc = _doc("d1", {"mango": 1})
        _, a = client.build_element("mango", doc, "g1")
        _, b = client.build_element("mango", doc, "g1")
        # Re-inserting the same document is idempotent.
        assert a.trs == b.trs

    def test_unseen_term_trs_distinct_across_documents(self, keys, server, model):
        plan = MergePlan(groups=(("apple", "pear"), ("plum", "mango")), r=2.0)
        client = _client("alice", keys, server, model, plan)
        _, a = client.build_element("mango", _doc("d1", {"mango": 1}), "g1")
        _, b = client.build_element("mango", _doc("d2", {"mango": 2, "apple": 1}), "g1")
        # Per-element pseudo-randomness keeps the TRS stream tie-free.
        assert a.trs != b.trs


class TestQuery:
    def _populate(self, alice, bob):
        # g1 documents: apple-heavy.
        alice.index_document(_doc("a1", {"apple": 8, "pear": 2}), "g1")
        alice.index_document(_doc("a2", {"apple": 1, "pear": 9}), "g1")
        # g2 documents.
        bob.index_document(_doc("b1", {"apple": 5, "plum": 5}), "g2")

    def test_topk_order_matches_rscore(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=3)
        assert result.doc_ids() == ["a1", "b1", "a2"]

    def test_access_control_limits_results(self, alice, bob):
        self._populate(alice, bob)
        result = alice.query("apple", k=3)
        assert result.doc_ids() == ["a1", "a2"]

    def test_trace_records_requests(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=1, policy=ResponsePolicy(initial_size=1))
        assert result.trace.num_requests >= 1
        assert result.trace.elements_transferred >= 1

    def test_follow_up_doubling(self, alice, bob, root):
        self._populate(alice, bob)
        # k=3 matches but initial size 1 forces follow-ups: sizes 1,2,4...
        result = root.query("apple", k=3, policy=ResponsePolicy(initial_size=1))
        assert result.trace.num_requests >= 2
        assert len(result.hits) == 3

    def test_unsatisfiable_query_exhausts_list(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("plum", k=5)
        assert len(result.hits) == 1
        assert not result.trace.satisfied

    def test_default_policy_is_b_equals_k(self, alice, bob, root):
        self._populate(alice, bob)
        result = root.query("apple", k=2)
        # initial response size == k == 2
        assert result.trace.elements_transferred >= 2

    def test_unknown_term(self, root):
        with pytest.raises(UnknownTermError):
            root.query("mango", k=1)

    def test_invalid_k(self, root):
        with pytest.raises(ValueError):
            root.query("apple", k=0)

    def test_hits_carry_group_and_score(self, alice, bob, root):
        self._populate(alice, bob)
        hit = root.query("apple", k=1).hits[0]
        assert hit.group == "g1"
        assert hit.rscore == pytest.approx(0.8)


class TestMultiTerm:
    def test_aggregation(self, alice, bob, root):
        alice.index_document(_doc("a1", {"apple": 5, "pear": 5}), "g1")
        alice.index_document(_doc("a2", {"apple": 9, "pear": 1}), "g1")
        ranked, traces = root.query_multi(["apple", "pear"], k=2)
        assert len(traces) == 2
        # a1 has balanced scores (0.5 + 0.5) beating a2 (0.9 + 0.1)? equal —
        # both sum to 1.0; tie-break by doc id puts a1 first.
        assert ranked[0][0] == "a1"
        assert ranked[0][1] == pytest.approx(1.0)
