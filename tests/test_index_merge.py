"""Unit tests for merging schemes and Def. 2 enforcement."""

import numpy as np
import pytest

from repro.errors import ConfidentialityViolationError, ConfigurationError
from repro.index.merge import (
    MergePlan,
    bfm_merge,
    greedy_pairing_merge,
    merged_list_confidentiality,
    random_merge,
)


@pytest.fixture()
def probabilities():
    # Zipf-flavoured term probabilities over 20 terms.
    raw = {f"t{i:02d}": 1.0 / (i + 1) for i in range(20)}
    total_docs = 100
    return {t: max(1, int(p * total_docs)) / total_docs for t, p in raw.items()}


class TestMergePlan:
    def test_list_of_and_terms_of(self):
        plan = MergePlan(groups=(("a", "b"), ("c",)), r=2.0)
        assert plan.list_of("a") == 0
        assert plan.list_of("c") == 1
        assert plan.terms_of(0) == ("a", "b")

    def test_unknown_term(self):
        plan = MergePlan(groups=(("a",),), r=2.0)
        with pytest.raises(KeyError):
            plan.list_of("zzz")

    def test_unknown_list(self):
        plan = MergePlan(groups=(("a",),), r=2.0)
        with pytest.raises(ConfigurationError):
            plan.terms_of(5)

    def test_duplicate_term_rejected(self):
        with pytest.raises(ConfigurationError):
            MergePlan(groups=(("a",), ("a",)), r=2.0)

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            MergePlan(groups=((),), r=2.0)

    def test_verify_passes_for_valid_plan(self):
        plan = MergePlan(groups=(("a", "b"),), r=2.0)
        plan.verify({"a": 0.3, "b": 0.3})

    def test_verify_raises_for_violation(self):
        plan = MergePlan(groups=(("a", "b"),), r=2.0)
        with pytest.raises(ConfidentialityViolationError):
            plan.verify({"a": 0.1, "b": 0.1})

    def test_all_terms(self):
        plan = MergePlan(groups=(("a", "b"), ("c",)), r=2.0)
        assert plan.all_terms() == {"a", "b", "c"}


class TestEffectiveConfidentiality:
    def test_value(self):
        assert merged_list_confidentiality(
            ["a", "b"], {"a": 0.25, "b": 0.25}
        ) == pytest.approx(2.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            merged_list_confidentiality(["a"], {"a": 0.0})


class TestBfmMerge:
    def test_all_terms_covered(self, probabilities):
        plan = bfm_merge(probabilities, r=4.0)
        assert plan.all_terms() == set(probabilities)

    def test_def2_satisfied_everywhere(self, probabilities):
        plan = bfm_merge(probabilities, r=4.0)
        plan.verify(probabilities)

    def test_frequency_locality(self, probabilities):
        # BFM groups consecutive frequency ranks: within each group, the
        # df ratio between the most and least frequent term is bounded by
        # the ratio across the group's rank span — no head+tail mixing.
        plan = bfm_merge(probabilities, r=3.0)
        ordered = sorted(probabilities, key=lambda t: -probabilities[t])
        rank = {t: i for i, t in enumerate(ordered)}
        for group in plan.groups:
            ranks = sorted(rank[t] for t in group)
            assert ranks == list(range(ranks[0], ranks[-1] + 1))

    def test_deterministic(self, probabilities):
        assert bfm_merge(probabilities, 4.0) == bfm_merge(probabilities, 4.0)

    def test_larger_r_means_more_lists(self, probabilities):
        strict = bfm_merge(probabilities, r=2.0)
        loose = bfm_merge(probabilities, r=10.0)
        assert loose.num_lists >= strict.num_lists

    def test_invalid_r(self, probabilities):
        with pytest.raises(ConfigurationError):
            bfm_merge(probabilities, r=1.0)


class TestRandomMerge:
    def test_def2_satisfied(self, probabilities):
        plan = random_merge(probabilities, r=4.0, rng=np.random.default_rng(1))
        plan.verify(probabilities)

    def test_all_terms_covered(self, probabilities):
        plan = random_merge(probabilities, r=4.0, rng=np.random.default_rng(2))
        assert plan.all_terms() == set(probabilities)

    def test_different_seeds_differ(self, probabilities):
        a = random_merge(probabilities, 4.0, rng=np.random.default_rng(1))
        b = random_merge(probabilities, 4.0, rng=np.random.default_rng(2))
        assert a != b


class TestGreedyPairingMerge:
    def test_def2_satisfied(self, probabilities):
        plan = greedy_pairing_merge(probabilities, r=4.0)
        plan.verify(probabilities)

    def test_all_terms_covered(self, probabilities):
        plan = greedy_pairing_merge(probabilities, r=4.0)
        assert plan.all_terms() == set(probabilities)

    def test_mixes_head_with_tail(self, probabilities):
        plan = greedy_pairing_merge(probabilities, r=3.0)
        ordered = sorted(probabilities, key=lambda t: -probabilities[t])
        rank = {t: i for i, t in enumerate(ordered)}
        # At least one group must span head and tail ranks (the designed
        # anti-property vs. BFM).
        spans = [
            max(rank[t] for t in g) - min(rank[t] for t in g)
            for g in plan.groups
            if len(g) > 1
        ]
        assert spans and max(spans) > len(probabilities) // 2
