"""Unit tests for retrieval-quality metrics."""

import pytest

from repro.evalmetrics.retrieval import kendall_tau, overlap_at_k, precision_at_k


class TestOverlap:
    def test_identical(self):
        assert overlap_at_k(["a", "b", "c"], ["a", "b", "c"], 3) == 1.0

    def test_disjoint(self):
        assert overlap_at_k(["a", "b"], ["c", "d"], 2) == 0.0

    def test_partial(self):
        assert overlap_at_k(["a", "b", "c"], ["b", "c", "d"], 3) == pytest.approx(2 / 3)

    def test_order_insensitive(self):
        assert overlap_at_k(["a", "b"], ["b", "a"], 2) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            overlap_at_k(["a"], ["a"], 0)


class TestPrecision:
    def test_all_relevant(self):
        assert precision_at_k(["a", "b"], ["a", "b", "c"], 2) == 1.0

    def test_half_relevant(self):
        assert precision_at_k(["a", "x"], ["a"], 2) == 0.5

    def test_short_result(self):
        assert precision_at_k(["a"], ["a"], 5) == 1.0

    def test_empty_result(self):
        assert precision_at_k([], ["a"], 5) == 0.0


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_order(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_one_swap(self):
        assert kendall_tau(["a", "b", "c"], ["b", "a", "c"]) == pytest.approx(1 / 3)

    def test_non_common_items_dropped(self):
        assert kendall_tau(["a", "x", "b"], ["a", "b", "y"]) == 1.0

    def test_too_few_common(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["b"])
