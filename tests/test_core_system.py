"""Tests for the end-to-end system facade."""

import pytest

from repro import SystemConfig, ZerberRSystem
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.index.merge import MergePlan


class TestConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.r == 4.0
        assert config.merge_scheme == "bfm"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(r=1.0)
        with pytest.raises(ConfigurationError):
            SystemConfig(training_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SystemConfig(merge_scheme="magic")


class TestBuild:
    def test_all_corpus_terms_in_plan(self, system):
        vocab_terms = set(iter(system.vocabulary))
        assert vocab_terms <= system.merge_plan.all_terms()

    def test_server_holds_all_posting_elements(self, system, corpus):
        expected = sum(len(corpus.stats(d).counts) for d in corpus.doc_ids())
        assert system.server.num_elements == expected

    def test_audit_confidential(self, system):
        audit = system.audit()
        assert audit.is_confidential
        assert audit.max_amplification <= system.config.r + 1e-9

    def test_groups_registered(self, system, corpus):
        for group in corpus.groups():
            assert group in system.key_service.groups()

    def test_superuser_in_all_groups(self, system, corpus):
        assert system.key_service.memberships("superuser") == corpus.groups()

    def test_preseeded_partial_superuser_gets_missing_groups(self, micro_corpus):
        # Regression: build() used to probe membership against an arbitrary
        # set element, so a superuser pre-enrolled in *that* group was
        # assumed enrolled everywhere and stayed blind to other groups.
        from repro.crypto.keys import GroupKeyService

        groups = sorted(micro_corpus.groups())
        assert len(groups) >= 2
        key_service = GroupKeyService(master_secret=b"p" * 32)
        key_service.register("superuser", {groups[0]})
        system = ZerberRSystem.build(
            micro_corpus, SystemConfig(r=3.0, seed=8), key_service=key_service
        )
        assert system.key_service.memberships("superuser") == set(groups)
        # And whole-collection queries actually see every group.
        seen_groups = set()
        for term in system.vocabulary.terms_by_frequency()[:20]:
            for hit in system.query(term, k=10).hits:
                seen_groups.add(hit.group)
        assert len(seen_groups) >= 2

    def test_empty_corpus_rejected(self):
        from repro.corpus.documents import Corpus

        with pytest.raises(ConfigurationError):
            ZerberRSystem.build(Corpus())

    def test_merge_plan_is_valid(self, system):
        assert isinstance(system.merge_plan, MergePlan)
        probabilities = {
            t: system.vocabulary.probability(t) for t in system.vocabulary
        }
        system.merge_plan.verify(probabilities)


class TestQuerying:
    def test_query_returns_hits(self, system, frequent_term):
        result = system.query(frequent_term, k=5)
        assert 1 <= len(result.hits) <= 5

    def test_results_sorted_by_score(self, system, frequent_term):
        result = system.query(frequent_term, k=10)
        scores = [h.rscore for h in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_client_cached(self, system):
        assert system.client_for("superuser") is system.client_for("superuser")

    def test_register_user(self, corpus):
        system = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=77))
        group = sorted(corpus.groups())[0]
        client = system.register_user("newbie", {group})
        term = sorted(corpus.stats(corpus.documents_in_group(group)[0].doc_id).counts)[0]
        result = client.query(term, k=3)
        assert all(hit.group == group for hit in result.hits)


class TestClusterDurability:
    def test_snapshot_restore_roundtrip_results(self, micro_corpus, tmp_path):
        system = ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=8))
        cluster, _ = system.deploy_cluster(
            num_servers=3, replication=2, lag=2, anti_entropy_every=4
        )
        path = tmp_path / "cluster.json"
        system.snapshot_cluster(path, cluster)
        restored, coordinator = system.restore_cluster(path)
        assert restored.replication_backlog() == cluster.replication_backlog()
        term = system.vocabulary.terms_by_frequency()[0]
        before = system.client_for("superuser", server=cluster).query(term, k=5)
        after = system.client_for("superuser", server=restored).query(term, k=5)
        assert after.doc_ids() == before.doc_ids()
        # The restored cluster keeps converging through normal operation.
        restored.run_replication_until_quiet()
        assert restored.replication_backlog() == {}
        assert coordinator.cluster is restored

    def test_restore_rejects_foreign_merge_plan(self, micro_corpus, tmp_path):
        system = ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=8))
        other = ZerberRSystem.build(micro_corpus, SystemConfig(r=2.0, seed=9))
        cluster, _ = other.deploy_cluster(num_servers=2)
        path = tmp_path / "cluster.json"
        other.snapshot_cluster(path, cluster)
        if other.merge_plan == system.merge_plan:
            pytest.skip("configs produced identical plans")
        with pytest.raises(ConfigurationError, match="merge plan"):
            system.restore_cluster(path)

    def test_system_save_is_load_index_compatible(self, micro_corpus, tmp_path):
        from repro.persist import load_index

        service = GroupKeyService(master_secret=b"s" * 32)
        system = ZerberRSystem.build(
            micro_corpus, SystemConfig(r=3.0, seed=8), key_service=service
        )
        path = tmp_path / "index.json"
        system.save(path)
        server2, plan2, _ = load_index(
            path, GroupKeyService(master_secret=b"s" * 32)
        )
        assert plan2 == system.merge_plan
        assert server2.num_elements == system.server.num_elements


class TestMergeSchemes:
    @pytest.mark.parametrize("scheme", ["bfm", "random", "greedy"])
    def test_all_schemes_confidential(self, micro_corpus, scheme):
        system = ZerberRSystem.build(
            micro_corpus, SystemConfig(r=3.0, merge_scheme=scheme, seed=1)
        )
        assert system.audit().is_confidential
