"""Unit tests for posting element/list data structures."""

import numpy as np
import pytest

from repro.index.postings import (
    EncryptedPostingElement,
    MergedPostingList,
    PostingElement,
    PostingList,
)


class TestPostingElement:
    def test_rscore(self):
        element = PostingElement(term="t", doc_id="d", tf=2, doc_length=8)
        assert element.rscore == pytest.approx(0.25)

    def test_zero_tf_rejected(self):
        with pytest.raises(ValueError):
            PostingElement(term="t", doc_id="d", tf=0, doc_length=5)

    def test_tf_above_length_rejected(self):
        with pytest.raises(ValueError):
            PostingElement(term="t", doc_id="d", tf=6, doc_length=5)

    def test_bytes_roundtrip(self):
        element = PostingElement(term="tëst", doc_id="1.txt", tf=3, doc_length=10)
        assert PostingElement.from_bytes(element.to_bytes()) == element

    def test_bytes_canonical(self):
        a = PostingElement(term="t", doc_id="d", tf=1, doc_length=2)
        b = PostingElement(term="t", doc_id="d", tf=1, doc_length=2)
        assert a.to_bytes() == b.to_bytes()


class TestEncryptedPostingElement:
    def test_trs_range_validated(self):
        with pytest.raises(ValueError):
            EncryptedPostingElement(ciphertext=b"x", group="g", trs=1.5)

    def test_trs_none_allowed(self):
        element = EncryptedPostingElement(ciphertext=b"x", group="g")
        assert element.trs is None

    def test_size_bits_with_trs(self):
        element = EncryptedPostingElement(ciphertext=b"1234", group="g", trs=0.5)
        assert element.size_bits == 4 * 8 + 64

    def test_size_bits_without_trs(self):
        element = EncryptedPostingElement(ciphertext=b"1234", group="g")
        assert element.size_bits == 32


class TestPostingList:
    def _element(self, doc_id, tf, length):
        return PostingElement(term="t", doc_id=doc_id, tf=tf, doc_length=length)

    def test_sorted_descending(self):
        plist = PostingList("t")
        plist.add(self._element("low", 1, 10))
        plist.add(self._element("high", 5, 10))
        plist.add(self._element("mid", 3, 10))
        assert [e.doc_id for e in plist] == ["high", "mid", "low"]

    def test_top_k(self):
        plist = PostingList(
            "t", [self._element(f"d{i}", i + 1, 100) for i in range(5)]
        )
        top = plist.top_k(2)
        assert [e.doc_id for e in top] == ["d4", "d3"]

    def test_top_k_beyond_length(self):
        plist = PostingList("t", [self._element("d", 1, 2)])
        assert len(plist.top_k(10)) == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            PostingList("t").top_k(-1)

    def test_wrong_term_rejected(self):
        plist = PostingList("t")
        with pytest.raises(ValueError):
            plist.add(PostingElement(term="u", doc_id="d", tf=1, doc_length=2))

    def test_ties_preserved(self):
        plist = PostingList("t")
        plist.add(self._element("a", 1, 10))
        plist.add(self._element("b", 1, 10))
        assert len(plist) == 2


class TestMergedPostingList:
    def _enc(self, trs):
        return EncryptedPostingElement(ciphertext=b"c", group="g", trs=trs)

    def test_sorted_insert(self):
        merged = MergedPostingList(0)
        for trs in [0.5, 0.9, 0.1, 0.7]:
            merged.add_sorted_by_trs(self._enc(trs))
        assert [e.trs for e in merged] == [0.9, 0.7, 0.5, 0.1]

    def test_bulk_load_equivalent_to_incremental(self):
        values = [0.4, 0.8, 0.2, 0.6, 0.6]
        incremental = MergedPostingList(0)
        for v in values:
            incremental.add_sorted_by_trs(self._enc(v))
        bulk = MergedPostingList(1)
        bulk.bulk_load_sorted_by_trs(self._enc(v) for v in values)
        assert [e.trs for e in incremental] == [e.trs for e in bulk]

    def test_trs_required_for_sorted_insert(self):
        merged = MergedPostingList(0)
        with pytest.raises(ValueError):
            merged.add_sorted_by_trs(
                EncryptedPostingElement(ciphertext=b"c", group="g")
            )
        with pytest.raises(ValueError):
            merged.bulk_load_sorted_by_trs(
                [EncryptedPostingElement(ciphertext=b"c", group="g")]
            )

    def test_random_insert_position_bounds(self):
        rng = np.random.default_rng(1)
        merged = MergedPostingList(0)
        for _ in range(50):
            merged.add_random(
                EncryptedPostingElement(ciphertext=b"c", group="g"), rng
            )
        assert len(merged) == 50

    def test_version_increments(self):
        merged = MergedPostingList(0)
        v0 = merged.version
        merged.add_sorted_by_trs(self._enc(0.5))
        assert merged.version == v0 + 1
        merged.bulk_load_sorted_by_trs([self._enc(0.2)])
        assert merged.version == v0 + 2

    def test_slice(self):
        merged = MergedPostingList(0)
        merged.bulk_load_sorted_by_trs([self._enc(v) for v in [0.9, 0.5, 0.1]])
        assert [e.trs for e in merged.slice(1, 2)] == [0.5, 0.1]
        assert merged.slice(5, 2) == []

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            MergedPostingList(0).slice(-1, 1)

    def test_size_bits(self):
        merged = MergedPostingList(0)
        merged.bulk_load_sorted_by_trs([self._enc(0.5)])
        assert merged.size_bits == 8 + 64

    def test_sorted_insert_returns_position(self):
        merged = MergedPostingList(0)
        assert merged.add_sorted_by_trs(self._enc(0.5)) == 0
        assert merged.add_sorted_by_trs(self._enc(0.9)) == 0
        assert merged.add_sorted_by_trs(self._enc(0.1)) == 2

    def test_find_and_pop_at(self):
        merged = MergedPostingList(0)
        for trs, payload in [(0.9, b"a"), (0.5, b"b"), (0.1, b"c")]:
            merged.add_sorted_by_trs(
                EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)
            )
        position, element = merged.find_by_ciphertext(b"b")
        assert (position, element.trs) == (1, 0.5)
        assert merged.find_by_ciphertext(b"zz") is None
        popped = merged.pop_at(position)
        assert popped.ciphertext == b"b"
        assert [e.trs for e in merged] == [0.9, 0.1]
        assert merged.keys_in_sync()


class TestKeySyncInvariant:
    """The key list must mirror ``elements`` through every mutator mix."""

    def _sorted_el(self, trs, payload):
        return EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)

    def _random_el(self, payload):
        return EncryptedPostingElement(ciphertext=payload, group="g")

    def test_add_random_maintains_keys(self):
        rng = np.random.default_rng(2)
        merged = MergedPostingList(0)
        for i, trs in enumerate([0.5, 0.9, 0.1]):
            merged.add_sorted_by_trs(self._sorted_el(trs, b"s%d" % i))
        for i in range(10):
            merged.add_random(self._random_el(b"r%d" % i), rng)
        assert merged.keys_in_sync()

    def test_regression_delete_after_random_insert_respects_trs_order(self):
        # Seed bug: add_random never inserted a key, so a later delete
        # removed the *wrong* key and the next sorted insert bisected
        # against stale keys, landing out of TRS order.
        rng = np.random.default_rng(11)  # first draw inserts at position 0
        merged = MergedPostingList(0)
        for trs, payload in [(0.9, b"a"), (0.5, b"b"), (0.2, b"c")]:
            merged.add_sorted_by_trs(self._sorted_el(trs, payload))
        merged.add_random(self._random_el(b"rnd"), rng)
        merged.remove_by_ciphertext(b"rnd")
        merged.add_sorted_by_trs(self._sorted_el(0.8, b"d"))
        assert [e.trs for e in merged] == [0.9, 0.8, 0.5, 0.2]
        assert merged.keys_in_sync()

    def test_mixed_mutator_fuzz_keeps_keys_in_sync(self):
        rng = np.random.default_rng(7)
        merged = MergedPostingList(0)
        live: list[bytes] = []
        counter = 0
        for _ in range(300):
            op = int(rng.integers(0, 3))
            if op == 0:
                payload = b"s%d" % counter
                counter += 1
                merged.add_sorted_by_trs(
                    self._sorted_el(float(rng.uniform()), payload)
                )
                live.append(payload)
            elif op == 1:
                payload = b"r%d" % counter
                counter += 1
                merged.add_random(self._random_el(payload), rng)
                live.append(payload)
            elif live:
                victim = live.pop(int(rng.integers(0, len(live))))
                assert merged.remove_by_ciphertext(victim) is not None
            assert merged.keys_in_sync()
        assert len(merged) == len(live)

    def test_pure_sorted_discipline_survives_interleaved_deletes(self):
        rng = np.random.default_rng(11)
        merged = MergedPostingList(0)
        live: list[bytes] = []
        for i in range(200):
            payload = b"e%d" % i
            merged.add_sorted_by_trs(
                self._sorted_el(float(rng.uniform()), payload)
            )
            live.append(payload)
            if i % 3 == 2:
                merged.remove_by_ciphertext(
                    live.pop(int(rng.integers(0, len(live))))
                )
            trs = [e.trs for e in merged]
            assert trs == sorted(trs, reverse=True)
            assert merged.keys_in_sync()
