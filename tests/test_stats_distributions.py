"""Unit tests for Zipf sampling and power-law fitting."""

import numpy as np
import pytest

from repro.stats.distributions import (
    PowerLawFit,
    ZipfSampler,
    fit_power_law,
    zipf_probabilities,
)


class TestZipfProbabilities:
    def test_normalised(self):
        probs = zipf_probabilities(100, 1.1)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, 1.0)
        assert np.all(np.diff(probs) < 0)

    def test_zero_exponent_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_exact_ratio(self):
        probs = zipf_probabilities(3, 1.0)
        assert probs[0] / probs[1] == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)
        with pytest.raises(ValueError):
            zipf_probabilities(5, -1.0)


class TestZipfSampler:
    def test_sample_range(self):
        sampler = ZipfSampler(20, 1.0, rng=np.random.default_rng(1))
        draws = sampler.sample(1000)
        assert draws.min() >= 0
        assert draws.max() < 20

    def test_head_dominates(self):
        sampler = ZipfSampler(100, 1.2, rng=np.random.default_rng(2))
        draws = sampler.sample(20000)
        head_share = np.mean(draws < 10)
        assert head_share > 0.5

    def test_sample_counts_sums_to_size(self):
        sampler = ZipfSampler(30, 1.0, rng=np.random.default_rng(3))
        counts = sampler.sample_counts(500)
        assert counts.sum() == 500
        assert counts.shape == (30,)

    def test_counts_match_probabilities(self):
        sampler = ZipfSampler(10, 1.0, rng=np.random.default_rng(4))
        counts = sampler.sample_counts(100000)
        empirical = counts / counts.sum()
        assert np.allclose(empirical, sampler.probabilities, atol=0.01)

    def test_negative_size_rejected(self):
        sampler = ZipfSampler(5)
        with pytest.raises(ValueError):
            sampler.sample(-1)
        with pytest.raises(ValueError):
            sampler.sample_counts(-1)


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        x = np.arange(1, 101, dtype=float)
        y = 3.0 * x**-1.5
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(-1.5, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict_inverts_fit(self):
        fit = PowerLawFit(slope=-2.0, intercept=1.0, r_squared=1.0)
        assert fit.predict(10.0) == pytest.approx(10.0 ** (-2.0 + 1.0))

    def test_noisy_data_lower_r_squared(self):
        rng = np.random.default_rng(5)
        x = np.arange(1, 201, dtype=float)
        y = x**-1.0 * rng.lognormal(0, 0.5, size=200)
        fit = fit_power_law(x, y)
        assert 0.3 < fit.r_squared < 1.0

    def test_nonpositive_points_ignored(self):
        x = np.array([0.0, 1.0, 2.0, 4.0])
        y = np.array([5.0, 1.0, 0.5, 0.25])
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(-1.0, abs=1e-9)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
