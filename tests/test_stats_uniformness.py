"""Unit tests for uniformness measures (the Fig. 9 Y-axis)."""

import numpy as np
import pytest

from repro.stats.uniformness import (
    empirical_cdf,
    ks_distance,
    ks_distance_to_uniform,
    uniformness_variance,
)


class TestUniformnessVariance:
    def test_perfect_uniform_grid_is_tiny(self):
        n = 1000
        values = (np.arange(1, n + 1)) / (n + 1)
        assert uniformness_variance(values) == pytest.approx(0.0, abs=1e-12)

    def test_uniform_sample_small(self):
        rng = np.random.default_rng(1)
        values = rng.random(5000)
        assert uniformness_variance(values) < 1e-3

    def test_clustered_sample_large(self):
        values = np.full(100, 0.5)
        clustered = uniformness_variance(values)
        rng = np.random.default_rng(2)
        uniform = uniformness_variance(rng.random(100))
        assert clustered > 10 * uniform

    def test_order_invariant(self):
        rng = np.random.default_rng(3)
        values = rng.random(50)
        assert uniformness_variance(values) == pytest.approx(
            uniformness_variance(values[::-1])
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            uniformness_variance([0.5, 1.5])
        with pytest.raises(ValueError):
            uniformness_variance([-0.1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformness_variance([])

    def test_paper_scale_achievable(self):
        # The paper reports variance < 2e-5 for a well-chosen sigma; a
        # genuinely uniform sample of a few thousand points is in that
        # ballpark, so the measure's scale matches the paper's.
        rng = np.random.default_rng(4)
        values = rng.random(3000)
        assert uniformness_variance(values) < 5e-4


class TestKsDistances:
    def test_uniform_sample_small_distance(self):
        rng = np.random.default_rng(5)
        assert ks_distance_to_uniform(rng.random(2000)) < 0.05

    def test_constant_sample_large_distance(self):
        assert ks_distance_to_uniform(np.full(100, 0.01)) > 0.9

    def test_two_sample_identical(self):
        values = np.linspace(0, 1, 100)
        assert ks_distance(values, values) == pytest.approx(0.0)

    def test_two_sample_disjoint(self):
        a = np.linspace(0.0, 0.1, 50)
        b = np.linspace(0.9, 1.0, 50)
        assert ks_distance(a, b) == pytest.approx(1.0)

    def test_two_sample_symmetric(self):
        rng = np.random.default_rng(6)
        a = rng.random(100)
        b = rng.normal(0.5, 0.1, 100)
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])
        with pytest.raises(ValueError):
            ks_distance_to_uniform([])


class TestEmpiricalCdf:
    def test_values_on_grid(self):
        values = [0.2, 0.4, 0.6, 0.8]
        grid = [0.0, 0.5, 1.0]
        cdf = empirical_cdf(values, grid)
        assert cdf.tolist() == [0.0, 0.5, 1.0]

    def test_step_behaviour(self):
        cdf = empirical_cdf([0.5], [0.49, 0.5, 0.51])
        assert cdf.tolist() == [0.0, 1.0, 1.0]
