"""Integration: a ZerberRClient working against a sharded ServerCluster.

The client is duck-typed over the server surface (insert_many / fetch /
delete_element), so a cluster is a drop-in replacement — queries survive a
replica failure and results match the single-server deployment.
"""

import pytest

from repro import SystemConfig, ZerberRSystem
from repro.core.client import ZerberRClient
from repro.core.cluster import ServerCluster


@pytest.fixture()
def cluster_setup(micro_corpus):
    """A single-server system plus an equivalent 3-server/2-replica cluster."""
    system = ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=22))
    cluster = ServerCluster(
        system.key_service,
        num_lists=system.merge_plan.num_lists,
        num_servers=3,
        replication=2,
    )
    # Re-index the corpus into the cluster through per-group owner clients.
    for group in sorted(micro_corpus.groups()):
        owner = f"owner:{group}"
        client = ZerberRClient(
            principal=owner,
            key_service=system.key_service,
            server=cluster,
            rstf_model=system.rstf_model,
            merge_plan=system.merge_plan,
        )
        items = []
        for doc in micro_corpus.documents_in_group(group):
            stats = micro_corpus.stats(doc.doc_id)
            for term in sorted(stats.counts):
                items.append(client.build_element(term, stats, group))
        cluster.bulk_load(owner, items)
    superuser = ZerberRClient(
        principal="superuser",
        key_service=system.key_service,
        server=cluster,
        rstf_model=system.rstf_model,
        merge_plan=system.merge_plan,
    )
    return system, cluster, superuser


class TestClusterQueries:
    def test_results_match_single_server(self, cluster_setup):
        system, cluster, superuser = cluster_setup
        for term in system.vocabulary.terms_by_frequency()[:5]:
            single = system.query(term, k=5)
            sharded = superuser.query(term, k=5)
            assert [h.rscore for h in sharded.hits] == pytest.approx(
                [h.rscore for h in single.hits]
            ), term

    def test_element_counts_match(self, cluster_setup):
        system, cluster, _ = cluster_setup
        assert cluster.num_elements == system.server.num_elements

    def test_queries_survive_one_failure(self, cluster_setup):
        system, cluster, superuser = cluster_setup
        term = system.vocabulary.terms_by_frequency()[0]
        before = superuser.query(term, k=5)
        cluster.fail_server(cluster.replicas_of(system.merge_plan.list_of(term))[0])
        after = superuser.query(term, k=5)
        assert after.doc_ids() == before.doc_ids()

    def test_compromising_one_server_sees_fraction(self, cluster_setup):
        _, cluster, _ = cluster_setup
        fraction = cluster.visible_fraction([0])
        # 3 servers, replication 2: one server holds 2/3 of the lists.
        assert fraction == pytest.approx(2 / 3, abs=0.05)

    def test_deletion_reaches_all_replicas(self, cluster_setup, micro_corpus):
        system, cluster, _ = cluster_setup
        group = sorted(micro_corpus.groups())[0]
        owner = ZerberRClient(
            principal=f"owner:{group}",
            key_service=system.key_service,
            server=cluster,
            rstf_model=system.rstf_model,
            merge_plan=system.merge_plan,
        )
        doc_id = micro_corpus.documents_in_group(group)[0].doc_id
        term = sorted(micro_corpus.stats(doc_id).counts)[0]
        from repro.text.analysis import DocumentStats

        doc = DocumentStats.from_counts("cluster-doc", {term: 2})
        before = cluster.num_elements
        receipts = owner.index_document_with_receipts(doc, group)
        assert cluster.num_elements == before + 1
        assert owner.delete_document(receipts) == 1
        assert cluster.num_elements == before
