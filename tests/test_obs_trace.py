"""Property and unit tests for the tick-stamped span tracer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.trace import NULL_TRACER, Span, Tracer


class TickClock:
    """Deterministic stand-in for the replication tick counter."""

    def __init__(self) -> None:
        self.tick = 0

    def __call__(self) -> int:
        self.tick += 1
        return self.tick


def _interpret(tracer: Tracer, script) -> None:
    """Run one nested-span script: each node opens a span around its
    children, so the script IS the expected tree shape."""
    for name, children in script:
        with tracer.span(name):
            _interpret(tracer, children)


# A script is a forest: list of (name, child-forest) nodes.
scripts = st.recursive(
    st.lists(
        st.tuples(st.sampled_from(["serve", "skim", "coalesce"]), st.just([])),
        max_size=3,
    ),
    lambda children: st.lists(
        st.tuples(st.sampled_from(["query", "round", "envelope"]), children),
        max_size=3,
    ),
    max_leaves=12,
)


@given(script=scripts)
@settings(max_examples=100, deadline=None)
def test_spans_are_balanced_and_closed(script):
    tracer = Tracer(TickClock(), capacity=256)
    trace_id = tracer.begin_trace("session")
    _interpret(tracer, script)
    tracer.end_trace(trace_id)
    assert tracer.open_spans() == 0
    assert tracer.active_trace_ids() == []
    for trace in tracer.traces():
        for span in trace.spans():
            assert span.closed
            assert span.end_tick >= span.start_tick


@given(script=scripts)
@settings(max_examples=100, deadline=None)
def test_same_script_yields_identical_trees(script):
    trees = []
    for _ in range(2):
        tracer = Tracer(TickClock(), capacity=256)
        trace_id = tracer.begin_trace("session")
        _interpret(tracer, script)
        tracer.end_trace(trace_id)
        trees.append([trace.to_dict() for trace in tracer.traces()])
    assert trees[0] == trees[1]


@given(script=scripts)
@settings(max_examples=100, deadline=None)
def test_script_shape_is_reproduced_in_the_tree(script):
    tracer = Tracer(TickClock(), capacity=256)
    # One enclosing span keeps the whole script on the nesting stack,
    # so the finished trace's shape must equal the script's shape.
    with tracer.span("root"):
        _interpret(tracer, script)

    def shape(span: Span):
        return [(child.name, shape(child)) for child in span.children]

    def expected(forest):
        return [(name, expected(children)) for name, children in forest]

    (trace,) = tracer.traces()
    assert trace.root.name == "root"
    assert shape(trace.root) == expected(script)


@given(
    num_traces=st.integers(min_value=0, max_value=40),
    capacity=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_finished_ring_is_bounded_and_keeps_newest(num_traces, capacity):
    tracer = Tracer(TickClock(), capacity=capacity)
    for i in range(num_traces):
        with tracer.span(f"t{i}"):
            pass
    finished = tracer.traces()
    assert len(finished) == min(num_traces, capacity)
    expected = [f"t{i}" for i in range(num_traces)][-capacity:]
    assert [trace.root.name for trace in finished] == expected


class TestTracerUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(TickClock(), capacity=0)

    def test_nested_spans_parent_on_the_stack(self):
        tracer = Tracer(TickClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        assert [child.name for child in outer.children] == ["inner"]

    def test_trace_context_attaches_to_the_root(self):
        tracer = Tracer(TickClock())
        trace_id = tracer.begin_trace("session")
        with tracer.span("serve", trace=trace_id):
            pass
        tracer.end_trace(trace_id)
        (trace,) = tracer.traces()
        assert [child.name for child in trace.root.children] == ["serve"]

    def test_unknown_trace_context_becomes_own_root(self):
        tracer = Tracer(TickClock())
        with tracer.span("serve", trace=999):
            pass
        (trace,) = tracer.traces()
        assert trace.root.name == "serve"

    def test_exception_still_closes_the_span(self):
        tracer = Tracer(TickClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        assert span.closed
        assert tracer.open_spans() == 0

    def test_leaked_roots_are_force_closed_at_capacity(self):
        tracer = Tracer(TickClock(), capacity=3)
        ids = [tracer.begin_trace(f"s{i}") for i in range(5)]
        assert len(tracer.active_trace_ids()) == 3
        assert tracer.active_trace_ids() == ids[2:]
        # the two oldest roots were force-closed into the ring
        assert [trace.root.name for trace in tracer.traces()] == ["s0", "s1"]

    def test_end_trace_is_idempotent_and_none_safe(self):
        tracer = Tracer(TickClock())
        trace_id = tracer.begin_trace("session")
        tracer.end_trace(trace_id)
        tracer.end_trace(trace_id)
        tracer.end_trace(None)
        assert len(tracer.traces()) == 1

    def test_annotate_and_duration(self):
        clock = TickClock()
        tracer = Tracer(clock)
        with tracer.span("serve") as span:
            span.annotate(slices=3)
            clock.tick += 10
        assert span.attributes["slices"] == 3
        assert span.duration_ticks > 0

    def test_reset_clears_everything(self):
        tracer = Tracer(TickClock())
        tracer.begin_trace("session")
        with tracer.span("serve"):
            pass
        tracer.reset()
        assert tracer.traces() == []
        assert tracer.active_trace_ids() == []
        assert tracer.open_spans() == 0

    def test_null_tracer_records_nothing(self):
        trace_id = NULL_TRACER.begin_trace("session")
        with NULL_TRACER.span("serve", trace=trace_id):
            pass
        NULL_TRACER.end_trace(trace_id)
        assert NULL_TRACER.traces() == []
