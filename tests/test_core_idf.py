"""Tests for the bucketed-IDF extension (the paper's future work)."""

import math

import numpy as np
import pytest

from repro.core.idf import BucketedIdf, aggregate_with_idf
from repro.errors import ConfigurationError, TrainingError
from repro.text.analysis import DocumentStats


def _docs():
    """A corpus where IDF matters: 'common' in every doc, 'rare' in one."""
    docs = []
    for i in range(20):
        counts = {"common": 2, f"filler{i}": 3}
        if i == 0:
            counts["rare"] = 2
        if i < 10:
            counts["mid"] = 1
        docs.append(DocumentStats.from_counts(f"d{i}", counts))
    return docs


class TestTraining:
    def test_buckets_ordered_by_selectivity(self):
        idf = BucketedIdf.train(_docs(), num_buckets=4)
        assert idf.bucket("common") < idf.bucket("rare")
        assert idf.bucket("common") <= idf.bucket("mid") <= idf.bucket("rare")

    def test_weights_increase_with_bucket(self):
        idf = BucketedIdf.train(_docs(), num_buckets=4)
        weights = [idf.weight("common"), idf.weight("mid"), idf.weight("rare")]
        assert weights == sorted(weights)

    def test_single_bucket_publishes_nothing(self):
        idf = BucketedIdf.train(_docs(), num_buckets=1)
        assert idf.leakage_bits() == 0.0
        assert idf.bucket("common") == idf.bucket("rare") == 0

    def test_unseen_terms_get_top_bucket(self):
        idf = BucketedIdf.train(_docs(), num_buckets=4)
        assert idf.bucket("never-seen") == 3

    def test_noise_perturbs_but_stays_valid(self):
        rng = np.random.default_rng(5)
        idf = BucketedIdf.train(_docs(), num_buckets=4, noise_scale=2.0, rng=rng)
        for term in ("common", "mid", "rare"):
            assert 0 <= idf.bucket(term) < 4
            assert np.isfinite(idf.weight(term))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BucketedIdf.train(_docs(), num_buckets=0)
        with pytest.raises(ConfigurationError):
            BucketedIdf.train(_docs(), noise_scale=-1.0)
        with pytest.raises(TrainingError):
            BucketedIdf.train([], num_buckets=2)
        with pytest.raises(ConfigurationError):
            BucketedIdf(buckets={"t": 5}, weights={0: 1.0}, num_buckets=2)


class TestLeakage:
    def test_worst_case_bits(self):
        idf = BucketedIdf.train(_docs(), num_buckets=8)
        assert idf.leakage_bits() == pytest.approx(3.0)

    def test_empirical_at_most_worst_case(self):
        for buckets in (2, 4, 8):
            idf = BucketedIdf.train(_docs(), num_buckets=buckets)
            assert idf.empirical_leakage_bits() <= idf.leakage_bits() + 1e-9

    def test_far_below_exact_idf_leakage(self):
        # Exact IDF reveals the full df: log2(N) bits for N documents.
        idf = BucketedIdf.train(_docs(), num_buckets=4)
        assert idf.leakage_bits() < math.log2(20)


class _Hit:
    def __init__(self, doc_id, rscore):
        self.doc_id = doc_id
        self.rscore = rscore


class TestAggregation:
    def test_plain_sum_without_idf(self):
        ranked = aggregate_with_idf(
            {"a": [_Hit("d1", 0.5)], "b": [_Hit("d1", 0.2), _Hit("d2", 0.6)]},
            idf=None,
        )
        assert ranked[0] == ("d1", pytest.approx(0.7))

    def test_idf_weighting_prefers_selective_terms(self):
        idf = BucketedIdf.train(_docs(), num_buckets=4)
        # d1 matches the selective term, d2 the common one, equal rscores.
        per_term = {
            "rare": [_Hit("d1", 0.4)],
            "common": [_Hit("d2", 0.4)],
        }
        with_idf = aggregate_with_idf(per_term, idf=idf)
        assert with_idf[0][0] == "d1"
        without = aggregate_with_idf(per_term, idf=None)
        assert without[0][1] == pytest.approx(without[1][1])  # tie without IDF

    def test_bucketed_tracks_exact_tfidf_ranking(self):
        # On the synthetic corpus, 4-bucket IDF must reproduce the exact
        # TFxIDF winner for a common+selective query.
        docs = _docs()
        idf = BucketedIdf.train(docs, num_buckets=4)
        per_term = {
            "mid": [_Hit("d0", 0.3), _Hit("d5", 0.3)],
            "rare": [_Hit("d0", 0.3)],
        }
        ranked = aggregate_with_idf(per_term, idf=idf)
        assert ranked[0][0] == "d0"
