"""Tests for the deletion protocol (receipts, idempotency, ACL)."""

import pytest

from repro import SystemConfig, ZerberRSystem
from repro.errors import AccessDeniedError
from repro.text.analysis import DocumentStats


@pytest.fixture()
def system(micro_corpus):
    # Function-scoped: deletion tests mutate the index.
    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=8))


def _new_doc(term_a="alpha-new", term_b="beta-new"):
    return DocumentStats.from_counts("fresh-doc", {term_a: 3, term_b: 1})


class TestDeletion:
    def test_insert_then_delete_roundtrip(self, system, micro_corpus):
        group = sorted(micro_corpus.groups())[0]
        client = system.client_for(f"owner:{group}")
        # Use existing corpus terms so the merge plan covers them.
        doc_id = micro_corpus.documents_in_group(group)[0].doc_id
        base = micro_corpus.stats(doc_id)
        terms = sorted(base.counts)[:2]
        doc = DocumentStats.from_counts("dup-doc", {t: 2 for t in terms})

        before = system.server.num_elements
        receipts = client.index_document_with_receipts(doc, group)
        assert system.server.num_elements == before + len(terms)

        removed = client.delete_document(receipts)
        assert removed == len(terms)
        assert system.server.num_elements == before

    def test_deleted_document_not_retrieved(self, system, micro_corpus):
        group = sorted(micro_corpus.groups())[0]
        client = system.client_for(f"owner:{group}")
        doc_id = micro_corpus.documents_in_group(group)[0].doc_id
        term = sorted(micro_corpus.stats(doc_id).counts)[0]
        doc = DocumentStats.from_counts("victim-doc", {term: 5})
        receipts = client.index_document_with_receipts(doc, group)

        df = system.vocabulary.document_frequency(term) + 1
        hits_before = client.query(term, k=df).doc_ids()
        assert "victim-doc" in hits_before

        client.delete_document(receipts)
        hits_after = client.query(term, k=df).doc_ids()
        assert "victim-doc" not in hits_after

    def test_deletion_idempotent(self, system, micro_corpus):
        group = sorted(micro_corpus.groups())[0]
        client = system.client_for(f"owner:{group}")
        doc_id = micro_corpus.documents_in_group(group)[0].doc_id
        term = sorted(micro_corpus.stats(doc_id).counts)[0]
        doc = DocumentStats.from_counts("once-doc", {term: 1})
        receipts = client.index_document_with_receipts(doc, group)
        assert client.delete_document(receipts) == 1
        assert client.delete_document(receipts) == 0

    def test_foreign_group_cannot_delete(self, system, micro_corpus):
        groups = sorted(micro_corpus.groups())
        assert len(groups) >= 2
        owner = system.client_for(f"owner:{groups[0]}")
        doc_id = micro_corpus.documents_in_group(groups[0])[0].doc_id
        term = sorted(micro_corpus.stats(doc_id).counts)[0]
        doc = DocumentStats.from_counts("guard-doc", {term: 1})
        receipts = owner.index_document_with_receipts(doc, groups[0])

        intruder = system.register_user("intruder", {groups[1]})
        with pytest.raises(AccessDeniedError):
            intruder.delete_document(receipts)

    def test_unknown_receipt_is_a_miss(self, system):
        client = system.client_for("superuser")
        assert client.delete_document([(0, b"no-such-ciphertext")]) == 0

    def test_trs_order_maintained_after_deletion(self, system, micro_corpus):
        group = sorted(micro_corpus.groups())[0]
        client = system.client_for(f"owner:{group}")
        doc_id = micro_corpus.documents_in_group(group)[0].doc_id
        term = sorted(micro_corpus.stats(doc_id).counts)[0]
        doc = DocumentStats.from_counts("order-doc", {term: 4})
        receipts = client.index_document_with_receipts(doc, group)
        client.delete_document(receipts)
        list_id = system.merge_plan.list_of(term)
        trs = system.server.visible_trs_values(list_id)
        assert trs == sorted(trs, reverse=True)
