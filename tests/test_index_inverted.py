"""Unit tests for the ordinary inverted index baseline."""

import pytest

from repro.errors import UnknownTermError
from repro.index.inverted import OrdinaryInvertedIndex
from repro.text.analysis import DocumentStats


def _doc(doc_id, counts):
    return DocumentStats.from_counts(doc_id, counts)


@pytest.fixture()
def index():
    return OrdinaryInvertedIndex.from_documents(
        [
            _doc("d1", {"apple": 4, "pear": 1}),  # apple rscore 0.8
            _doc("d2", {"apple": 1, "pear": 4}),  # apple rscore 0.2
            _doc("d3", {"apple": 2, "plum": 2}),  # apple rscore 0.5
        ]
    )


class TestConstruction:
    def test_counts(self, index):
        assert index.num_documents == 3
        assert index.num_terms == 3
        assert index.num_posting_elements == 6

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(_doc("d1", {"x": 1}))

    def test_empty_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(DocumentStats(doc_id="e", counts={}, length=0))

    def test_document_frequency(self, index):
        assert index.document_frequency("apple") == 3
        assert index.document_frequency("plum") == 1


class TestSingleTermTopK:
    def test_order_by_normalized_tf(self, index):
        top = index.top_k("apple", 3)
        assert [e.doc_id for e in top] == ["d1", "d3", "d2"]

    def test_k_truncates(self, index):
        assert len(index.top_k("apple", 2)) == 2

    def test_unknown_term_raises(self, index):
        with pytest.raises(UnknownTermError):
            index.top_k("zzz", 1)

    def test_scores_for_term_descending(self, index):
        scores = index.scores_for_term("apple")
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(0.8)


class TestMultiTermTopK:
    def test_idf_weighting_prefers_selective_terms(self, index):
        # 'plum' appears only in d3; despite equal normalized TF, idf boosts it.
        results = index.top_k_multi(["apple", "plum"], 3)
        assert results[0][0] == "d3"

    def test_unknown_terms_ignored(self, index):
        results = index.top_k_multi(["apple", "zzz"], 2)
        assert len(results) == 2

    def test_deterministic_tie_break(self, index):
        results = index.top_k_multi(["pear"], 3)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_zero(self, index):
        assert index.top_k_multi(["apple"], 0) == []

    def test_negative_k_rejected(self, index):
        with pytest.raises(ValueError):
            index.top_k_multi(["apple"], -1)


class TestStorage:
    def test_score_slots_equal_elements(self, index):
        assert index.storage_score_slots() == index.num_posting_elements
