"""Hot-path crypto: the optimized implementations are byte-identical to
straight-line references, known answers stay pinned across refactors, and
the batch/memo/cache layers change performance only — never bytes."""

import hashlib
import hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import (
    NONCE_SIZE,
    TAG_SIZE,
    StreamCipher,
    cipher_for_key,
    decrypt,
    encrypt,
)
from repro.crypto.prf import Prf, XofKeystream, derive_key
from repro.errors import AuthenticationError

KEY = b"0123456789abcdef0123456789abcdef"
NONCE = bytes(range(NONCE_SIZE))

key_strategy = st.binary(min_size=16, max_size=64)
nonce_strategy = st.binary(min_size=NONCE_SIZE, max_size=NONCE_SIZE)


# -- straight-line references (what the optimized code must match) ------------


def reference_prf(key: bytes, message: bytes) -> bytes:
    """One hmac.new per call: the definitionally-correct PRF."""
    return hmac.new(key, message, hashlib.sha256).digest()


def reference_hmac_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """The pre-PR chunked loop: HMAC(key, nonce || counter) blocks, trimmed."""
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = reference_prf(key, nonce + counter.to_bytes(8, "big"))
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def reference_xof_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """One-shot SHAKE-256(key || nonce) squeeze, no precomputed state."""
    return hashlib.shake_256(key + nonce).digest(length)


def reference_encrypt(master_key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """The cipher construction, spelled out byte by byte."""
    enc_key = reference_prf(master_key, b"derive:enc")
    mac_key = reference_prf(master_key, b"derive:mac")
    stream = reference_xof_keystream(enc_key, nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = reference_prf(mac_key, nonce + body)[:TAG_SIZE]
    return nonce + body + tag


# -- known-answer vectors (pin the bytes across future refactors) -------------


class TestKnownAnswers:
    def test_prf_evaluate(self):
        assert Prf(KEY).evaluate(b"known-answer").hex() == (
            "a64987137614a6766c0a68940706ccff"
            "e9e09b8fc1e517307c72b6fbcbdee547"
        )

    def test_prf_keystream(self):
        assert Prf(KEY).keystream(b"kat-nonce", 48).hex() == (
            "7ba3d32fb0153c9cbbdc0b02166e10f9"
            "1892541230d8718460ed38f01f081c83"
            "16032578415cfccded60dbd6d76d5830"
        )

    def test_derive_key(self):
        assert derive_key(KEY, "enc").hex() == (
            "da1e7564d2b19f985e5bbf440318a564"
            "f4087d70c87fb15f245049d107cc5611"
        )

    def test_xof_keystream(self):
        assert XofKeystream(derive_key(KEY, "enc")).keystream(NONCE, 24).hex() == (
            "8d353692a009a49c33028ffbfc7bcbb756b33e86771484eb"
        )

    def test_cipher_encrypt(self):
        assert StreamCipher(KEY).encrypt(b"attack at dawn", NONCE).hex() == (
            "000102030405060708090a0b0c0d0e0f"
            "ec4142f3c36284fd4722eb9a8b1565e5"
            "b7954e9082625c9bcd7d6f94c5bc"
        )


# -- optimized == reference, for all inputs -----------------------------------


@given(key=key_strategy, message=st.binary(max_size=256))
@settings(max_examples=150, deadline=None)
def test_prf_matches_hmac(key, message):
    assert Prf(key).evaluate(message) == reference_prf(key, message)


@given(
    key=key_strategy,
    nonce=st.binary(min_size=1, max_size=32),
    length=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=150, deadline=None)
def test_prf_keystream_matches_reference(key, nonce, length):
    assert Prf(key).keystream(nonce, length) == reference_hmac_keystream(
        key, nonce, length
    )


@given(
    key=key_strategy,
    nonce=nonce_strategy,
    length=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=150, deadline=None)
def test_xof_keystream_matches_reference(key, nonce, length):
    xof_key = derive_key(key, "enc")
    assert XofKeystream(xof_key).keystream(nonce, length) == (
        reference_xof_keystream(xof_key, nonce, length)
    )


@given(key=key_strategy, nonce=nonce_strategy, plaintext=st.binary(max_size=300))
@settings(max_examples=150, deadline=None)
def test_encrypt_matches_reference(key, nonce, plaintext):
    assert StreamCipher(key).encrypt(plaintext, nonce) == reference_encrypt(
        key, plaintext, nonce
    )


@given(key=key_strategy, nonce=nonce_strategy, plaintext=st.binary(max_size=300))
@settings(max_examples=150, deadline=None)
def test_roundtrip_through_reference_ciphertext(key, nonce, plaintext):
    """A reference-built ciphertext decrypts on the optimized path."""
    assert StreamCipher(key).decrypt(
        reference_encrypt(key, plaintext, nonce)
    ) == plaintext


# -- batch skim semantics -----------------------------------------------------


class TestTryDecryptMany:
    def _batch(self):
        cipher = StreamCipher(KEY)
        good = [
            cipher.encrypt(b"element-%d" % i, bytes([i]) * NONCE_SIZE)
            for i in range(8)
        ]
        other = StreamCipher(b"x" * 32).encrypt(b"foreign", NONCE)
        tampered = bytearray(good[0])
        tampered[NONCE_SIZE] ^= 1
        return cipher, good + [other, bytes(tampered), b"short"]

    def test_matches_per_element_try_decrypt(self):
        cipher, batch = self._batch()
        expected = [StreamCipher(KEY).try_decrypt(ct) for ct in batch]
        assert cipher.try_decrypt_many(batch) == expected

    def test_order_preserved(self):
        cipher, batch = self._batch()
        result = cipher.try_decrypt_many(batch)
        assert result[:8] == [b"element-%d" % i for i in range(8)]
        assert result[8:] == [None, None, None]

    def test_decrypt_many_raises_on_failure(self):
        cipher, batch = self._batch()
        with pytest.raises(AuthenticationError):
            cipher.decrypt_many(batch)

    def test_decrypt_many_all_good(self):
        cipher = StreamCipher(KEY)
        batch = [cipher.encrypt(b"m%d" % i, bytes([i]) * 16) for i in range(5)]
        assert cipher.decrypt_many(batch) == [b"m%d" % i for i in range(5)]

    def test_empty_plaintexts(self):
        cipher = StreamCipher(KEY)
        batch = [cipher.encrypt(b"", NONCE)] * 3
        assert cipher.try_decrypt_many(batch) == [b"", b"", b""]


class TestDecryptMemo:
    def test_repeated_skim_identical(self):
        cipher = StreamCipher(KEY)
        batch = [cipher.encrypt(b"hot-%d" % i, bytes([i]) * 16) for i in range(4)]
        first = cipher.try_decrypt_many(batch)
        second = cipher.try_decrypt_many(batch)  # served from the memo
        assert first == second == [b"hot-%d" % i for i in range(4)]

    def test_memo_is_bounded(self):
        cipher = StreamCipher(KEY, memo_capacity=16)
        batch = [cipher.encrypt(b"e%d" % i, bytes([i % 251, i // 251]) * 8) for i in range(100)]
        cipher.try_decrypt_many(batch)
        assert len(cipher._memo) <= 16

    def test_tamper_after_memoisation_still_fails(self):
        cipher = StreamCipher(KEY)
        ciphertext = cipher.encrypt(b"secret", NONCE)
        assert cipher.try_decrypt(ciphertext) == b"secret"
        tampered = bytearray(ciphertext)
        tampered[-1] ^= 1
        assert cipher.try_decrypt(bytes(tampered)) is None

    def test_memo_disabled(self):
        cipher = StreamCipher(KEY, memo_capacity=0)
        ciphertext = cipher.encrypt(b"m", NONCE)
        assert cipher.try_decrypt(ciphertext) == b"m"
        assert cipher.try_decrypt_many([ciphertext]) == [b"m"]
        assert cipher._memo == {}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(KEY, memo_capacity=-1)


# -- one-shot helper cache ----------------------------------------------------


class TestCachedHelpers:
    def test_cipher_for_key_is_cached(self):
        assert cipher_for_key(KEY) is cipher_for_key(KEY)

    def test_cipher_for_key_separates_keys(self):
        assert cipher_for_key(KEY) is not cipher_for_key(b"y" * 32)

    def test_one_shot_roundtrip(self):
        assert decrypt(KEY, encrypt(KEY, b"data", NONCE)) == b"data"

    def test_one_shot_matches_instance(self):
        assert encrypt(KEY, b"data", NONCE) == StreamCipher(KEY).encrypt(
            b"data", NONCE
        )
