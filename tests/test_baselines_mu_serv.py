"""Unit tests for the μ-Serv probabilistic-index baseline."""

import pytest

from repro.baselines.mu_serv import MuServConfig, MuServIndex
from repro.errors import ConfigurationError, UnknownTermError


@pytest.fixture(scope="module")
def index(corpus):
    return MuServIndex.build(corpus, MuServConfig(false_positive_rate=1.0, seed=2))


class TestConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MuServConfig(false_positive_rate=-0.1)


class TestFalsePositives:
    def test_true_matches_always_included(self, index, corpus, medium_term):
        outcome = index.query(medium_term)
        assert set(outcome.true_matches) <= set(outcome.doc_ids)

    def test_visible_df_inflated(self, index, corpus, medium_term):
        true_df = len(
            [d for d in corpus.doc_ids() if corpus.stats(d).tf(medium_term) > 0]
        )
        assert index.visible_document_frequency(medium_term) >= true_df

    def test_precision_below_one_for_padded_terms(self, index, medium_term):
        outcome = index.query(medium_term)
        if len(outcome.doc_ids) > len(outcome.true_matches):
            assert outcome.precision < 1.0

    def test_zero_rate_is_exact(self, corpus, medium_term):
        exact = MuServIndex.build(corpus, MuServConfig(false_positive_rate=0.0))
        outcome = exact.query(medium_term)
        assert outcome.precision == pytest.approx(1.0)

    def test_higher_rate_lower_precision(self, corpus, medium_term):
        low = MuServIndex.build(corpus, MuServConfig(false_positive_rate=0.5, seed=1))
        high = MuServIndex.build(corpus, MuServConfig(false_positive_rate=3.0, seed=1))
        assert (
            high.query(medium_term).precision <= low.query(medium_term).precision
        )


class TestQuerying:
    def test_unknown_term(self, index):
        with pytest.raises(UnknownTermError):
            index.query("no-such-term")

    def test_no_ranking_cost_independent_of_k(self, index, medium_term):
        assert index.query_top_k_cost(medium_term, 1) == index.query_top_k_cost(
            medium_term, 50
        )

    def test_cost_equals_padded_set_size(self, index, medium_term):
        assert index.query_top_k_cost(medium_term, 10) == len(
            index.visible_posting_set(medium_term)
        )

    def test_invalid_k(self, index, medium_term):
        with pytest.raises(ValueError):
            index.query_top_k_cost(medium_term, 0)

    def test_transferred_matches_result_size(self, index, medium_term):
        outcome = index.query(medium_term)
        assert outcome.elements_transferred == len(outcome.doc_ids)
