"""Tests for index persistence (save/load roundtrip)."""

import json

import pytest

from repro import SystemConfig, ZerberRSystem
from repro.core.client import ZerberRClient
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.persist import (
    FORMAT_VERSION,
    V1_FORMAT_VERSION,
    load_index,
    merge_plan_from_dict,
    merge_plan_to_dict,
    rstf_model_from_dict,
    rstf_model_to_dict,
    save_index,
    server_to_dict,
)


@pytest.fixture(scope="module")
def built(micro_corpus):
    service = GroupKeyService(master_secret=b"p" * 32)
    system = ZerberRSystem.build(
        micro_corpus, SystemConfig(r=3.0, seed=4), key_service=service
    )
    return system, service


class TestEncoders:
    def test_merge_plan_roundtrip(self, built):
        system, _ = built
        data = merge_plan_to_dict(system.merge_plan)
        assert merge_plan_from_dict(data) == system.merge_plan

    def test_rstf_model_roundtrip(self, built):
        system, _ = built
        data = rstf_model_to_dict(system.rstf_model)
        model = rstf_model_from_dict(data)
        assert model.terms() == system.rstf_model.terms()
        term = next(iter(model.terms()))
        assert model.get(term).transform(0.1) == system.rstf_model.get(
            term
        ).transform(0.1)


class TestSaveLoad:
    def test_roundtrip_preserves_query_results(self, built, tmp_path):
        system, service = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)

        # A fresh key service with the same master secret reconstructs the
        # group keys; principals must be re-registered (keys are trusted
        # state, not part of the untrusted dump).
        service2 = GroupKeyService(master_secret=b"p" * 32)
        server2, plan2, model2 = load_index(path, service2)
        for group in system.corpus.groups():
            service2.ensure_group(group)
        service2.register("superuser", set(system.corpus.groups()))
        client = ZerberRClient(
            principal="superuser",
            key_service=service2,
            server=server2,
            rstf_model=model2,
            merge_plan=plan2,
        )
        term = system.vocabulary.terms_by_frequency()[1]
        original = system.query(term, k=5)
        reloaded = client.query(term, k=5)
        assert reloaded.doc_ids() == original.doc_ids()
        assert [h.rscore for h in reloaded.hits] == [
            h.rscore for h in original.hits
        ]

    def test_roundtrip_preserves_element_count(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        server2, _, _ = load_index(path, GroupKeyService(master_secret=b"p" * 32))
        assert server2.num_elements == system.server.num_elements

    def test_trs_order_preserved(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        server2, plan2, _ = load_index(path, GroupKeyService(master_secret=b"p" * 32))
        for list_id in range(min(plan2.num_lists, 20)):
            assert server2.visible_trs_values(list_id) == system.server.visible_trs_values(
                list_id
            )

    def test_version_check(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_list_versions_survive_reload(self, built, tmp_path):
        """v2 dumps carry per-list mutation counters, so version-stamped
        responses stay comparable across a restart."""
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        server2, _, _ = load_index(path, GroupKeyService(master_secret=b"p" * 32))
        for list_id in range(server2.num_lists):
            assert server2.list_version(list_id) == system.server.list_version(
                list_id
            )

    def test_wrong_secret_cannot_decrypt(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        wrong = GroupKeyService(master_secret=b"X" * 32)
        server2, plan2, model2 = load_index(path, wrong)
        for group in system.corpus.groups():
            wrong.ensure_group(group)
        wrong.register("superuser", set(system.corpus.groups()))
        client = ZerberRClient(
            principal="superuser",
            key_service=wrong,
            server=server2,
            rstf_model=model2,
            merge_plan=plan2,
        )
        term = system.vocabulary.terms_by_frequency()[1]
        # All decryptions fail authentication -> zero hits, no crash.
        result = client.query(term, k=5)
        assert result.hits == ()


class TestV1Compat:
    """Legacy (pre-replication) dumps must keep loading unchanged."""

    def _v1_payload(self, system):
        return {
            "format_version": V1_FORMAT_VERSION,
            "merge_plan": merge_plan_to_dict(system.merge_plan),
            "rstf_model": rstf_model_to_dict(system.rstf_model),
            "server": server_to_dict(system.server, include_versions=False),
        }

    def test_v1_dump_loads_and_queries(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._v1_payload(system)))
        service = GroupKeyService(master_secret=b"p" * 32)
        server2, plan2, model2 = load_index(path, service)
        assert server2.num_elements == system.server.num_elements
        assert plan2 == system.merge_plan
        for group in system.corpus.groups():
            service.ensure_group(group)
        service.register("superuser", set(system.corpus.groups()))
        client = ZerberRClient(
            principal="superuser",
            key_service=service,
            server=server2,
            rstf_model=model2,
            merge_plan=plan2,
        )
        term = system.vocabulary.terms_by_frequency()[1]
        assert client.query(term, k=5).doc_ids() == system.query(
            term, k=5
        ).doc_ids()

    def test_v1_wire_shape_is_versionless(self, built):
        system, _ = built
        payload = self._v1_payload(system)
        assert "versions" not in payload["server"]
        assert "kind" not in payload


class TestCorruptDumps:
    def test_unknown_list_id_names_path_and_id(self, built, tmp_path):
        """A hand-edited dump with an out-of-range list id must fail as a
        named configuration error, not a raw KeyError/IndexError."""
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        lists = payload["server"]["lists"]
        bad_id = str(payload["server"]["num_lists"] + 7)
        lists[bad_id] = lists.pop(next(iter(lists)))
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError) as excinfo:
            load_index(path, GroupKeyService(master_secret=b"p" * 32))
        assert bad_id in str(excinfo.value)
        assert str(path) in str(excinfo.value)

    def test_non_integer_list_id(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        lists = payload["server"]["lists"]
        lists["banana"] = lists.pop(next(iter(lists)))
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="banana"):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_truncated_json_names_path(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        path.write_text(path.read_text()[:100])
        with pytest.raises(ConfigurationError, match=str(path)):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_missing_lists_section(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        del payload["server"]["lists"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=str(path)):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_element_missing_ciphertext(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        lists = payload["server"]["lists"]
        next(iter(lists.values()))[0].pop("c")
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match=str(path)):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_cluster_dump_rejected_by_load_index(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        payload["kind"] = "cluster"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="load_cluster"):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))


class TestAtomicWrites:
    def test_interrupted_save_keeps_previous_dump(
        self, built, tmp_path, monkeypatch
    ):
        """A crash during the final rename (the last moment a save can
        die) must leave the previous file byte-identical."""
        import repro.persist.atomic as atomic

        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(atomic.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_index(
                path, system.server, system.merge_plan, system.rstf_model
            )
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == [
            "index.json"
        ], "temp file leaked"

    def test_interrupted_first_save_leaves_no_partial_file(
        self, built, tmp_path, monkeypatch
    ):
        import repro.persist.atomic as atomic

        system, _ = built
        path = tmp_path / "index.json"
        monkeypatch.setattr(
            atomic.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            save_index(
                path, system.server, system.merge_plan, system.rstf_model
            )
        assert list(tmp_path.iterdir()) == []

    def test_save_replaces_existing_dump(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        path.write_text("previous generation")
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    def test_save_preserves_existing_file_mode(self, built, tmp_path):
        """Re-saving must not tighten a dump's permissions to the temp
        file's 0600 (e.g. break a group-readable backup job)."""
        import os

        system, _ = built
        path = tmp_path / "index.json"
        path.write_text("previous generation")
        os.chmod(path, 0o664)
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        assert os.stat(path).st_mode & 0o777 == 0o664
