"""Tests for index persistence (save/load roundtrip)."""

import json

import pytest

from repro import SystemConfig, ZerberRSystem
from repro.core.client import ZerberRClient
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError
from repro.persist import (
    FORMAT_VERSION,
    load_index,
    merge_plan_from_dict,
    merge_plan_to_dict,
    rstf_model_from_dict,
    rstf_model_to_dict,
    save_index,
)


@pytest.fixture(scope="module")
def built(micro_corpus):
    service = GroupKeyService(master_secret=b"p" * 32)
    system = ZerberRSystem.build(
        micro_corpus, SystemConfig(r=3.0, seed=4), key_service=service
    )
    return system, service


class TestEncoders:
    def test_merge_plan_roundtrip(self, built):
        system, _ = built
        data = merge_plan_to_dict(system.merge_plan)
        assert merge_plan_from_dict(data) == system.merge_plan

    def test_rstf_model_roundtrip(self, built):
        system, _ = built
        data = rstf_model_to_dict(system.rstf_model)
        model = rstf_model_from_dict(data)
        assert model.terms() == system.rstf_model.terms()
        term = next(iter(model.terms()))
        assert model.get(term).transform(0.1) == system.rstf_model.get(
            term
        ).transform(0.1)


class TestSaveLoad:
    def test_roundtrip_preserves_query_results(self, built, tmp_path):
        system, service = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)

        # A fresh key service with the same master secret reconstructs the
        # group keys; principals must be re-registered (keys are trusted
        # state, not part of the untrusted dump).
        service2 = GroupKeyService(master_secret=b"p" * 32)
        server2, plan2, model2 = load_index(path, service2)
        for group in system.corpus.groups():
            service2.ensure_group(group)
        service2.register("superuser", set(system.corpus.groups()))
        client = ZerberRClient(
            principal="superuser",
            key_service=service2,
            server=server2,
            rstf_model=model2,
            merge_plan=plan2,
        )
        term = system.vocabulary.terms_by_frequency()[1]
        original = system.query(term, k=5)
        reloaded = client.query(term, k=5)
        assert reloaded.doc_ids() == original.doc_ids()
        assert [h.rscore for h in reloaded.hits] == [
            h.rscore for h in original.hits
        ]

    def test_roundtrip_preserves_element_count(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        server2, _, _ = load_index(path, GroupKeyService(master_secret=b"p" * 32))
        assert server2.num_elements == system.server.num_elements

    def test_trs_order_preserved(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        server2, plan2, _ = load_index(path, GroupKeyService(master_secret=b"p" * 32))
        for list_id in range(min(plan2.num_lists, 20)):
            assert server2.visible_trs_values(list_id) == system.server.visible_trs_values(
                list_id
            )

    def test_version_check(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_index(path, GroupKeyService(master_secret=b"p" * 32))

    def test_wrong_secret_cannot_decrypt(self, built, tmp_path):
        system, _ = built
        path = tmp_path / "index.json"
        save_index(path, system.server, system.merge_plan, system.rstf_model)
        wrong = GroupKeyService(master_secret=b"X" * 32)
        server2, plan2, model2 = load_index(path, wrong)
        for group in system.corpus.groups():
            wrong.ensure_group(group)
        wrong.register("superuser", set(system.corpus.groups()))
        client = ZerberRClient(
            principal="superuser",
            key_service=wrong,
            server=server2,
            rstf_model=model2,
            merge_plan=plan2,
        )
        term = system.vocabulary.terms_by_frequency()[1]
        # All decryptions fail authentication -> zero hits, no crash.
        result = client.query(term, k=5)
        assert result.hits == ()
