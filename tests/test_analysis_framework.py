"""zlint framework tests: suppressions, CLI contract, report shape."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    all_checkers,
    analyze_source,
    main,
    module_name_for_path,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"

BAD_SNIPPET = """\
from repro.crypto.cipher import StreamCipher


def rogue(key: bytes) -> StreamCipher:
    return StreamCipher(key)
"""


def test_bad_snippet_fires_without_suppression():
    findings = analyze_source(BAD_SNIPPET, module="fixture_mod")
    assert [f.rule for f in findings] == ["crypto-construct"]


def test_line_suppression_silences_matching_rule():
    source = BAD_SNIPPET.replace(
        "return StreamCipher(key)",
        "return StreamCipher(key)  # zlint: disable=crypto-construct -- test",
    )
    assert analyze_source(source, module="fixture_mod") == []


def test_line_suppression_ignores_other_rules():
    source = BAD_SNIPPET.replace(
        "return StreamCipher(key)",
        "return StreamCipher(key)  # zlint: disable=determinism",
    )
    findings = analyze_source(source, module="fixture_mod")
    assert [f.rule for f in findings] == ["crypto-construct"]


def test_line_suppression_only_covers_its_own_line():
    source = "# zlint: disable=crypto-construct\n" + BAD_SNIPPET
    findings = analyze_source(source, module="fixture_mod")
    assert [f.rule for f in findings] == ["crypto-construct"]


def test_file_suppression_covers_whole_file():
    source = "# zlint: disable-file=crypto-construct\n" + BAD_SNIPPET
    assert analyze_source(source, module="fixture_mod") == []


def test_suppression_accepts_comma_separated_rules():
    source = BAD_SNIPPET.replace(
        "return StreamCipher(key)",
        "return StreamCipher(key)  # zlint: disable=determinism, crypto-construct",
    )
    assert analyze_source(source, module="fixture_mod") == []


def test_syntax_error_becomes_pseudo_finding():
    findings = analyze_source("def broken(:\n", module="fixture_mod")
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"


def test_finding_render_format():
    finding = Finding(
        rule="crypto-construct", message="no", path="src/x.py", line=3, col=5
    )
    assert finding.render() == "src/x.py:3:5: crypto-construct: no"


def test_module_name_for_path_anchors_at_src():
    assert module_name_for_path(Path("src/repro/core/server.py")) == "repro.core.server"
    assert module_name_for_path(Path("src/repro/__init__.py")) == "repro"
    assert (
        module_name_for_path(Path("tests/analysis_fixtures/determinism_bad.py"))
        == "determinism_bad"
    )


def test_rules_argument_restricts_checkers():
    source = (FIXTURES / "crypto_construct_bad.py").read_text()
    none = analyze_source(source, module="fixture_mod", rules=["determinism"])
    some = analyze_source(source, module="fixture_mod", rules=["crypto-construct"])
    assert none == []
    assert {f.rule for f in some} == {"crypto-construct"}


# -- command line -------------------------------------------------------------


def test_main_exit_zero_on_clean_path(capsys):
    assert main([str(FIXTURES / "crypto_construct_good.py")]) == 0
    assert "0 finding(s) in 1 file(s)" in capsys.readouterr().err


def test_main_exit_one_and_renders_findings(capsys):
    assert main([str(FIXTURES / "crypto_construct_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "crypto-construct" in out
    assert "crypto_construct_bad.py:9:" in out


def test_main_exit_two_on_missing_path(capsys):
    assert main(["tests/does_not_exist_anywhere"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_main_exit_two_on_unknown_rule(capsys):
    assert main([str(FIXTURES), "--rules", "not-a-rule"]) == 2
    assert "unknown rule id(s): not-a-rule" in capsys.readouterr().err


def test_main_json_report_shape(capsys):
    main([str(FIXTURES / "crypto_construct_bad.py"), "--format", "json"])
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_checked"] == 1
    assert report["findings"]
    finding = report["findings"][0]
    assert set(finding) == {"rule", "message", "path", "line", "col", "severity"}


def test_main_writes_report_file(tmp_path, capsys):
    report_path = tmp_path / "zlint-report.json"
    main([str(FIXTURES / "crypto_construct_bad.py"), "--output", str(report_path)])
    capsys.readouterr()
    report = json.loads(report_path.read_text())
    assert report["files_checked"] == 1
    assert {f["rule"] for f in report["findings"]} == {"crypto-construct"}


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_checkers():
        assert rule in out


def test_cli_lint_subcommand_roundtrip(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", str(FIXTURES / "crypto_construct_good.py")]) == 0
    assert cli_main(["lint", str(FIXTURES / "crypto_construct_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "crypto-construct" in out
