"""End-to-end tests for the repro-index CLI."""

import pytest

from repro.cli import DEFAULT_SECRET, main


@pytest.fixture(scope="module")
def docs_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("docs")
    alpha = root / "alpha"
    beta = root / "beta"
    alpha.mkdir()
    beta.mkdir()
    (alpha / "a1.txt").write_text(
        "reactor calibration reactor dosing schedule reactor"
    )
    (alpha / "a2.txt").write_text("dosing budget meeting notes calibration")
    (beta / "b1.txt").write_text("camera calibration defect detection camera")
    (beta / "b2.txt").write_text("defect catalogue revision maintenance")
    return root


@pytest.fixture(scope="module")
def index_file(docs_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("idx") / "index.json"
    code = main(
        [
            "build",
            "--input",
            str(docs_dir),
            "--output",
            str(path),
            "--r",
            "1.5",
        ]
    )
    assert code == 0
    return path


class TestBuild:
    def test_index_written(self, index_file):
        assert index_file.exists()
        assert index_file.stat().st_size > 0

    def test_missing_input_errors(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(
            ["build", "--input", str(empty), "--output", str(tmp_path / "i.json")]
        )
        assert code == 2


class TestInfo:
    def test_info_prints_stats(self, index_file, capsys):
        assert main(["info", "--index", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "posting elements" in out
        assert "alpha" in out and "beta" in out


class TestQuery:
    def test_query_finds_documents(self, index_file, capsys):
        code = main(
            ["query", "--index", str(index_file), "--term", "reactor", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "a1.txt" in out

    def test_group_restriction(self, index_file, capsys):
        code = main(
            [
                "query",
                "--index",
                str(index_file),
                "--term",
                "calibration",
                "--k",
                "5",
                "--groups",
                "beta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b1.txt" in out
        assert "a1.txt" not in out and "a2.txt" not in out

    def test_wrong_secret_no_results(self, index_file, capsys):
        code = main(
            [
                "--secret",
                "ab" * 32,
                "query",
                "--index",
                str(index_file),
                "--term",
                "reactor",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no readable results" in out

    def test_default_secret_is_documented_constant(self):
        assert len(bytes.fromhex(DEFAULT_SECRET)) >= 32


@pytest.fixture(scope="module")
def snapshot_file(docs_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "cluster.json"
    code = main(
        [
            "snapshot",
            "--input",
            str(docs_dir),
            "--output",
            str(path),
            "--servers",
            "3",
            "--replication",
            "2",
            "--lag",
            "2",
            "--r",
            "1.5",
        ]
    )
    assert code == 0
    return path


class TestSnapshotRestore:
    def test_snapshot_written(self, snapshot_file):
        assert snapshot_file.exists()
        assert snapshot_file.stat().st_size > 0

    def test_restore_prints_state(self, snapshot_file, capsys):
        assert main(["restore", "--snapshot", str(snapshot_file)]) == 0
        out = capsys.readouterr().out
        assert "posting elements" in out
        assert "catch-up backlog" in out

    def test_restore_converge_and_query(self, snapshot_file, capsys):
        code = main(
            [
                "restore",
                "--snapshot",
                str(snapshot_file),
                "--converge",
                "--term",
                "reactor",
                "--k",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "a1.txt" in out

    def test_restore_group_restriction(self, snapshot_file, capsys):
        code = main(
            [
                "restore",
                "--snapshot",
                str(snapshot_file),
                "--term",
                "calibration",
                "--k",
                "5",
                "--groups",
                "beta",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b1.txt" in out
        assert "a1.txt" not in out and "a2.txt" not in out

    def test_restore_of_server_dump_errors(self, index_file, capsys):
        code = main(["restore", "--snapshot", str(index_file)])
        assert code == 2
        assert "load_index" in capsys.readouterr().err
