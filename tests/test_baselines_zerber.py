"""Unit tests for the Zerber (EDBT 2008) baseline."""

import numpy as np
import pytest

from repro.baselines.zerber import ZerberServer, ZerberSystem
from repro.crypto.keys import GroupKeyService
from repro.errors import AccessDeniedError, ProtocolError, UnknownTermError
from repro.index.postings import EncryptedPostingElement


@pytest.fixture(scope="module")
def zsystem(corpus):
    return ZerberSystem.build(corpus, r=4.0, seed=9)


class TestServer:
    def _keys(self):
        svc = GroupKeyService(master_secret=b"k" * 32)
        svc.register("u", {"g"})
        return svc

    def test_plaintext_score_rejected(self):
        server = ZerberServer(self._keys(), num_lists=1)
        with pytest.raises(ProtocolError):
            server.insert("u", 0, EncryptedPostingElement(b"c", "g", trs=0.5))

    def test_membership_enforced(self):
        server = ZerberServer(self._keys(), num_lists=1)
        with pytest.raises(AccessDeniedError):
            server.insert("u", 0, EncryptedPostingElement(b"c", "other"))

    def test_random_placement(self):
        keys = self._keys()
        server = ZerberServer(keys, num_lists=1, rng=np.random.default_rng(3))
        for _ in range(64):
            server.insert("u", 0, EncryptedPostingElement(b"c", "g"))
        # With random placement the list exists and has all elements; order
        # carries no TRS (nothing to assert on order — that's the point).
        assert server.num_elements == 64

    def test_download_filters_by_membership(self):
        keys = self._keys()
        keys.register("v", {"h"})
        keys.register("root", {"g", "h"})
        server = ZerberServer(keys, num_lists=1, rng=np.random.default_rng(4))
        server.insert("u", 0, EncryptedPostingElement(b"c1", "g"))
        server.insert("v", 0, EncryptedPostingElement(b"c2", "h"))
        assert len(server.download("u", 0)) == 1
        assert len(server.download("root", 0)) == 2


class TestSystem:
    def test_query_downloads_whole_readable_list(self, zsystem, corpus):
        term = zsystem.vocabulary.terms_by_frequency()[0]
        list_id = zsystem.merge_plan.list_of(term)
        result = zsystem.query(term, k=10)
        readable = zsystem.server.download("superuser", list_id)
        assert result.trace.elements_transferred == len(readable)
        assert result.trace.num_requests == 1

    def test_ranking_correct_despite_random_order(self, zsystem, corpus):
        from repro.index.inverted import OrdinaryInvertedIndex

        ordinary = OrdinaryInvertedIndex.from_documents(corpus.all_stats())
        term = zsystem.vocabulary.terms_by_frequency()[2]
        expected = [e.doc_id for e in ordinary.top_k(term, 5)]
        got = zsystem.query(term, k=5).doc_ids()
        # Scores may tie; compare the score sequences instead of ids.
        expected_scores = [e.rscore for e in ordinary.top_k(term, 5)]
        got_scores = [h.rscore for h in zsystem.query(term, k=5).hits]
        assert got_scores == pytest.approx(expected_scores)
        assert set(got) <= set(e.doc_id for e in ordinary.posting_list(term))

    def test_bandwidth_far_exceeds_k(self, zsystem):
        # The pathology Zerber+R fixes: TRes >> k for merged lists.
        term = zsystem.vocabulary.terms_by_frequency()[0]
        result = zsystem.query(term, k=10)
        assert result.trace.elements_transferred > 10

    def test_unknown_term(self, zsystem):
        with pytest.raises(UnknownTermError):
            zsystem.query("no-such-term", k=1)

    def test_merge_plan_confidential(self, zsystem):
        probabilities = {
            t: zsystem.vocabulary.probability(t) for t in zsystem.vocabulary
        }
        zsystem.merge_plan.verify(probabilities)
