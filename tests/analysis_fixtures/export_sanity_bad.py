"""Bad: __all__ names a ghost and an import is silently re-exported."""

from json import dumps

__all__ = ["encode", "decode"]


def encode(payload: dict) -> str:
    return repr(payload)
