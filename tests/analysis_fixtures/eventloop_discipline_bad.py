"""Bad: core code building its own timer/callback machinery.

Linted as ``repro.core.fixture_mod`` — inside the rule's scope but not
one of the raw-scheduling modules (eventloop itself, router).
"""

import threading
from sched import scheduler


def spawn_timer(callback):
    timer = threading.Timer(1.0, callback)
    timer.start()
    return timer


def schedule_delivery(loop, cluster):
    # Periodic maintenance hand-rolled as one-shot callbacks instead of
    # a registered EventLoop.every task.
    loop.call_at(3, cluster.replication_tick)
    loop.call_later(1, cluster.replication_tick)
