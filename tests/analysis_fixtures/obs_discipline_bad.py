"""Bad fixture: every telemetry discipline violation in one file.

Linted as ``repro.core.fixture_mod`` so the core-scoped sub-rules apply.
"""


def leak_telemetry(tracer, registry, batch):
    # ad-hoc stdout telemetry instead of the registry
    print("served", len(batch), "slices")

    # span opened outside a `with` — leaks open on exception
    span = tracer.span("serve", slices=len(batch))

    # the core must not create instruments at all
    served = registry.counter("cluster_reads_total")
    depth = registry.gauge("coordinator_queue_depth")
    lag = registry.histogram("cluster_read_lag_ticks")
    return span, served, depth, lag
