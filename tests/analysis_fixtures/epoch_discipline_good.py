"""Good: the envelope pins the epoch it was routed under."""

from repro.core.protocol import CoalescedBatchRequest


def route(cluster, batches, slice_ids):
    return CoalescedBatchRequest(
        batches=batches, slice_ids=slice_ids, epoch=cluster.placement_epoch
    )


def replicas(cluster, list_id: int):
    return cluster.replicas_of(list_id)
