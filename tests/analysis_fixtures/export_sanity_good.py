"""Good: __all__ matches the module's bindings and imports are used."""

from json import dumps

__all__ = ["encode"]


def encode(payload: dict) -> str:
    return dumps(payload, sort_keys=True)
