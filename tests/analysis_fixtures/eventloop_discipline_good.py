"""Good: periodic core work registered through the event loop.

Linted as ``repro.core.fixture_mod`` — scheduling goes through
``EventLoop.every``, which is allowed everywhere in the core.
"""


def register_maintenance(loop, cluster):
    delivery = loop.every(1, cluster.replication_tick, name="replication-delivery")
    sweep = loop.every(4, cluster.anti_entropy, name="anti-entropy")
    return delivery, sweep


def drive(loop):
    loop.advance(1)
    return loop.run_until_quiet()
