"""Bad: ad-hoc nonce/cipher construction and raw hashing outside repro.crypto."""

import hashlib

from repro.crypto.cipher import NonceSequence, StreamCipher


def encrypt_ad_hoc(key: bytes, plaintext: bytes) -> bytes:
    cipher = StreamCipher(key)  # restart hazard: bypasses GroupKeyService
    nonces = NonceSequence(key, label="rogue")  # restarts the counter stream
    digest = hashlib.sha256(plaintext).digest()  # raw hash outside the Prf surface
    return cipher.encrypt(plaintext + digest, nonces.next())
