"""Good (linted as a repro.core module): seeded generators, tick clock."""

import random

import numpy as np


def jitter(seed: int, clock) -> float:
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return clock.tick_count + rng.random() + local.random()
