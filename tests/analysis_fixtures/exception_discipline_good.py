"""Good (linted as repro.persist): corruption wrapped into ConfigurationError."""

import json
from pathlib import Path

from repro.errors import ConfigurationError


def read_settings(path: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ConfigurationError(f"{path}: corrupt settings: {error}") from error
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: corrupt settings: not an object")
    return payload


def load_section(path: str) -> dict:
    payload = read_settings(path)
    try:
        return payload["section"]
    except (KeyError, TypeError) as error:
        raise ConfigurationError(f"{path}: missing section: {error!r}") from error
