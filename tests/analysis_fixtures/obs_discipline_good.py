"""Good fixture: the sanctioned telemetry idioms.

Linted as ``repro.core.fixture_mod`` so the core-scoped sub-rules apply.
"""


def serve_with_discipline(tracer, obs, batch):
    # spans are context-managed, so they close even on exception
    with tracer.span("serve", slices=len(batch)) as span:
        span.annotate(done=True)

    # session roots are the one sanctioned non-context pair
    trace_id = tracer.begin_trace("query", terms=2)
    tracer.end_trace(trace_id)

    # the core records through pre-bound instruments, never factories
    obs.reads.inc(1.0, consistency="one")
    obs.read_lag_ticks.observe(0.0, consistency="one")
    return trace_id
