"""Good: writes go through the server; reads use public accessors."""


def insert_via_server(server, principal: str, list_id: int, element) -> None:
    server.insert(principal, list_id, element)


def groups_of(server, list_id: int) -> set[str]:
    return set(server.visible_group_tags(list_id))
