"""Bad (linted as a repro.core module): wall clock and unseeded entropy."""

import random
import time

import numpy as np


def jitter() -> float:
    started = time.time()
    rng = np.random.default_rng()
    pick = random.random()
    return started + rng.random() + pick
