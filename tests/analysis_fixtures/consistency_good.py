"""Good: every Read/WriteConsistency member is handled (or a fallback exists)."""

from repro.core.replication import ReadConsistency, WriteConsistency


def pick_replica(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary
    elif consistency is ReadConsistency.QUORUM:
        return replicas
    raise ValueError(f"unknown consistency: {consistency!r}")


def pick_with_fallback(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary
    else:
        return replicas


def acks_needed(consistency, num_replicas):
    if consistency is WriteConsistency.ONE:
        return 1
    elif consistency is WriteConsistency.QUORUM:
        return num_replicas // 2 + 1
    elif consistency is WriteConsistency.ALL:
        return num_replicas
    raise ValueError(f"unknown consistency: {consistency!r}")


def acks_with_fallback(consistency, num_replicas):
    if consistency is WriteConsistency.ONE:
        return 1
    elif consistency is WriteConsistency.QUORUM:
        return num_replicas // 2 + 1
    else:
        return num_replicas
