"""Good: every ReadConsistency member is handled (or a fallback exists)."""

from repro.core.replication import ReadConsistency


def pick_replica(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary
    elif consistency is ReadConsistency.QUORUM:
        return replicas
    raise ValueError(f"unknown consistency: {consistency!r}")


def pick_with_fallback(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary
    else:
        return replicas
