"""Bad (linted as repro.persist): raw parse errors and subscripts escape."""

import json
from pathlib import Path


def read_settings(path: str) -> dict:
    return json.loads(Path(path).read_text())  # JSONDecodeError escapes raw


def load_section(path: str) -> dict:
    payload = read_settings(path)
    return payload["section"]  # KeyError escapes raw


def load_lenient(path: str) -> dict | None:
    try:
        return read_settings(path)["section"]
    except KeyError:
        return None  # swallows instead of raising ConfigurationError
