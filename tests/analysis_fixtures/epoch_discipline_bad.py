"""Bad: unpinned envelopes and direct placement-table reads."""

from repro.core.protocol import CoalescedBatchRequest


def route_without_epoch(batches, slice_ids):
    return CoalescedBatchRequest(batches=batches, slice_ids=slice_ids)


def route_with_none(batches, slice_ids):
    return CoalescedBatchRequest(batches=batches, slice_ids=slice_ids, epoch=None)


def peek_placement(cluster, list_id: int):
    return cluster._placement[list_id]
