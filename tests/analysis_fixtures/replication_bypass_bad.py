"""Bad: mutating a merged list / reaching server state outside the log."""


def sneak_insert(server, list_id: int, element) -> None:
    merged = server._lists[list_id]  # private state of a foreign object
    merged.add_sorted_by_trs(element)  # replicas never see this write


def sneak_delete(merged, ciphertext: bytes) -> bool:
    return merged.remove_by_ciphertext(ciphertext)
