"""Bad: key material reaching f-strings, print and logger calls."""

import logging

logger = logging.getLogger(__name__)


def debug_dump(group_key: bytes, session_key: bytes, master_secret: bytes) -> str:
    print("derived", group_key)
    logger.info("session key is %r", session_key)
    return f"master secret: {master_secret.hex()}"
