"""Good: logging names and counts, never key bytes; benign _key suffixes."""


def describe(principal: str, group: str, num_keys: int) -> str:
    cache_key = (principal, group)
    print(f"principal {principal} holds {num_keys} group keys under {cache_key!r}")
    return f"group: {group}"
