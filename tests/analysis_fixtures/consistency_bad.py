"""Bad: the dispatch forgets QUORUM and has no else fallback."""

from repro.core.replication import ReadConsistency


def pick_replica(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary
