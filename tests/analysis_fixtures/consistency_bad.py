"""Bad: dispatches forget a member and have no else fallback."""

from repro.core.replication import ReadConsistency, WriteConsistency


def pick_replica(consistency, primary, replicas):
    if consistency is ReadConsistency.ONE:
        return replicas[0]
    elif consistency is ReadConsistency.PRIMARY:
        return primary


def acks_needed(consistency, num_replicas):
    if consistency is WriteConsistency.ONE:
        return 1
    elif consistency is WriteConsistency.QUORUM:
        return num_replicas // 2 + 1
