"""Good: ciphers and nonce sequences come from the key service."""


def encrypt_sanctioned(keys, principal: str, group: str, plaintext: bytes) -> bytes:
    cipher = keys.cipher_for(principal, group)
    nonce = keys.nonce_sequence(principal, group).next()
    return cipher.encrypt(plaintext, nonce)
