"""Unit tests for the metric primitives and the catalog registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TICK_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    freeze_labels,
)
from repro.obs.registry import CATALOG_BY_NAME, METRIC_CATALOG, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c")
        counter.inc(1.0, consistency="one")
        counter.inc(4.0, consistency="quorum")
        assert counter.value(consistency="one") == 1.0
        assert counter.value(consistency="quorum") == 4.0
        assert counter.total() == 5.0

    def test_bound_handle_hits_the_same_series(self):
        counter = Counter("c")
        bound = counter.bind(consistency="one")
        bound.inc()
        bound.inc(2.0)
        assert counter.value(consistency="one") == 3.0

    def test_set_total_overwrites(self):
        counter = Counter("c")
        counter.set_total(7.0)
        counter.set_total(9.0)
        assert counter.value() == 9.0

    def test_label_order_is_canonical(self):
        assert freeze_labels({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
        counter = Counter("c")
        counter.inc(1.0, b="2", a="1")
        counter.inc(1.0, a="1", b="2")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_set_and_bind(self):
        gauge = Gauge("g")
        gauge.set(4.0, server="0")
        gauge.bind(server="0").set(2.0)
        assert gauge.value(server="0") == 2.0
        assert gauge.value(server="1") == 0.0


class TestHistogramBucketMath:
    def test_default_tick_buckets_are_doubling(self):
        assert DEFAULT_TICK_BUCKETS == (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
        assert DEFAULT_SIZE_BUCKETS == (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

    def test_bounds_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(0.0, 2.0, 4.0))
        hist.observe(0.0)  # == first bound -> bucket 0
        hist.observe(1.0)  # <= 2.0 -> bucket 1
        hist.observe(2.0)  # == 2.0 -> bucket 1
        hist.observe(3.0)  # <= 4.0 -> bucket 2
        hist.observe(99.0)  # overflow (+Inf)
        assert hist.bucket_counts() == [1, 2, 1, 1]
        assert hist.count() == 5
        assert hist.sum() == 105.0
        assert hist.mean() == 21.0

    def test_every_observation_lands_in_exactly_one_bucket(self):
        hist = Histogram("h", buckets=DEFAULT_TICK_BUCKETS)
        for value in range(0, 200, 7):
            hist.observe(float(value))
        assert sum(hist.bucket_counts()) == hist.count()

    def test_overflow_bucket_is_extra(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        assert len(hist.bucket_counts()) == 3

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_labeled_series(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5, consistency="one")
        hist.observe(1.5, consistency="quorum")
        assert hist.count(consistency="one") == 1
        assert hist.count(consistency="quorum") == 1
        assert hist.count() == 0

    def test_empty_series_mean_is_zero(self):
        assert Histogram("h", buckets=(1.0,)).mean() == 0.0


class TestNullInstruments:
    def test_null_instruments_swallow_everything(self):
        NULL_COUNTER.inc(5.0)
        NULL_COUNTER.set_total(5.0)
        NULL_COUNTER.bind(x="1").inc()
        NULL_GAUGE.set(5.0)
        NULL_GAUGE.bind(x="1").set(5.0)
        NULL_HISTOGRAM.observe(5.0)
        NULL_HISTOGRAM.bind(x="1").observe(5.0)
        assert NULL_COUNTER.total() == 0.0
        assert NULL_GAUGE.value() == 0.0
        assert NULL_HISTOGRAM.count() == 0


class TestRegistry:
    def test_unknown_metric_name_fails_loudly(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="METRIC_CATALOG"):
            registry.counter("made_up_metric")

    def test_kind_mismatch_fails_loudly(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="declared as a counter"):
            registry.gauge("cluster_reads_total")

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("cluster_reads_total") is registry.counter(
            "cluster_reads_total"
        )

    def test_histogram_gets_catalog_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("cluster_read_lag_ticks")
        assert hist.buckets == DEFAULT_TICK_BUCKETS
        assert registry.histogram("coordinator_envelope_slices").buckets == (
            DEFAULT_SIZE_BUCKETS
        )

    def test_catalog_has_no_duplicates_and_valid_kinds(self):
        assert len(CATALOG_BY_NAME) == len(METRIC_CATALOG)
        assert {spec.kind for spec in METRIC_CATALOG} <= {
            "counter",
            "gauge",
            "histogram",
        }

    def test_collector_runs_before_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("views_hits_total")
        live = {"hits": 0}
        registry.register_collector(
            lambda: counter.set_total(float(live["hits"]))
        )
        live["hits"] = 12
        snapshot = registry.snapshot()
        assert snapshot["views_hits_total"]["series"] == [
            {"labels": {}, "value": 12.0}
        ]


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cluster_reads_total").inc(3.0, consistency="one")
    registry.counter("cluster_reads_total").inc(1.0, consistency="quorum")
    registry.gauge("cluster_server_load").set(5.0, server="0")
    hist = registry.histogram("cluster_read_lag_ticks")
    for value in (0.0, 1.0, 3.0, 100.0):
        hist.observe(value, consistency="one")
    return registry


class TestSnapshotMergeReset:
    def test_snapshot_is_sorted_and_json_shaped(self):
        import json

        snapshot = _populated_registry().snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must be serializable as-is

    def test_snapshot_reset_merge_round_trips(self):
        registry = _populated_registry()
        before = registry.snapshot()
        registry.reset()
        empty = registry.snapshot()
        assert all(not data["series"] for data in empty.values())
        registry.merge_snapshot(before)
        assert registry.snapshot() == before

    def test_merge_into_live_registry_adds_counters_and_buckets(self):
        registry = _populated_registry()
        snapshot = registry.snapshot()
        registry.merge_snapshot(snapshot)
        assert registry.counter("cluster_reads_total").value(consistency="one") == 6.0
        hist = registry.histogram("cluster_read_lag_ticks")
        assert hist.count(consistency="one") == 8
        assert hist.sum(consistency="one") == 208.0

    def test_merge_is_right_biased_for_gauges(self):
        registry = _populated_registry()
        snapshot = registry.snapshot()
        registry.gauge("cluster_server_load").set(99.0, server="0")
        registry.merge_snapshot(snapshot)
        assert registry.gauge("cluster_server_load").value(server="0") == 5.0

    def test_merge_rejects_incompatible_histogram(self):
        registry = _populated_registry()
        snapshot = registry.snapshot()
        entry = dict(snapshot["cluster_read_lag_ticks"]["series"][0])
        entry["buckets"] = entry["buckets"][:2]
        with pytest.raises(ValueError, match="incompatible buckets"):
            registry.histogram("cluster_read_lag_ticks").merge_series(entry)

    def test_merge_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            registry.merge_snapshot({"cluster_reads_total": {"kind": "summary"}})
