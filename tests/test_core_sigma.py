"""Unit tests for σ selection (Fig. 9 machinery)."""

import numpy as np
import pytest

from repro.core.sigma import (
    SigmaSelection,
    default_sigma_grid,
    heuristic_sigma,
    select_sigma,
    trs_variance_for_sigma,
)


@pytest.fixture(scope="module")
def term_scores():
    """A realistic skewed score sample, split train/control."""
    rng = np.random.default_rng(6)
    scores = rng.beta(2, 10, size=300)
    return scores[:200].tolist(), scores[200:].tolist()


class TestGrid:
    def test_default_grid_log_spaced(self):
        grid = default_sigma_grid()
        assert len(grid) == 25
        ratios = [grid[i + 1] / grid[i] for i in range(len(grid) - 1)]
        assert max(ratios) - min(ratios) < 1e-6

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            default_sigma_grid(minimum=0.0)
        with pytest.raises(ValueError):
            default_sigma_grid(minimum=10.0, maximum=1.0)
        with pytest.raises(ValueError):
            default_sigma_grid(points=1)


class TestVarianceForSigma:
    def test_positive(self, term_scores):
        train, control = term_scores
        assert trs_variance_for_sigma(train, control, 50.0) > 0.0

    def test_erf_kind(self, term_scores):
        train, control = term_scores
        assert trs_variance_for_sigma(train, control, 50.0, kind="erf") > 0.0

    def test_unknown_kind_rejected(self, term_scores):
        train, control = term_scores
        with pytest.raises(ValueError):
            trs_variance_for_sigma(train, control, 50.0, kind="x")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            trs_variance_for_sigma([], [0.1], 10.0)
        with pytest.raises(ValueError):
            trs_variance_for_sigma([0.1], [], 10.0)

    def test_extreme_sigmas_worse_than_moderate(self, term_scores):
        # The Fig. 9 shape: under- and over-fitting both hurt.
        train, control = term_scores
        v_tiny = trs_variance_for_sigma(train, control, 0.01)
        v_good = trs_variance_for_sigma(train, control, heuristic_sigma(train))
        v_huge = trs_variance_for_sigma(train, control, 1e7)
        assert v_good < v_tiny
        assert v_good < v_huge


class TestSelectSigma:
    def test_returns_curve_and_minimum(self, term_scores):
        train, control = term_scores
        selection = select_sigma(train, control, grid=(1.0, 10.0, 100.0, 1000.0))
        assert len(selection.variances) == 4
        assert selection.best_variance == min(selection.variances)
        assert selection.best_sigma in selection.sigmas

    def test_u_shape_on_wide_grid(self, term_scores):
        train, control = term_scores
        selection = select_sigma(
            train, control, grid=default_sigma_grid(0.1, 1e6, 29)
        )
        assert selection.is_u_shaped(tolerance=0.05)

    def test_best_variance_small(self, term_scores):
        # A well-chosen sigma should uniformise the control set well; the
        # paper reports < 2e-5 on its corpora.  Our smaller control set
        # gives a noisier estimate, so assert an order-of-magnitude bound.
        train, control = term_scores
        selection = select_sigma(train, control)
        assert selection.best_variance < 1e-3

    def test_empty_grid_rejected(self, term_scores):
        train, control = term_scores
        with pytest.raises(ValueError):
            select_sigma(train, control, grid=())


class TestSigmaSelectionDataclass:
    def test_edge_minimum_not_u_shaped(self):
        selection = SigmaSelection(sigmas=(1.0, 2.0), variances=(0.1, 0.2))
        assert not selection.is_u_shaped()

    def test_u_shape_detection(self):
        selection = SigmaSelection(
            sigmas=(1.0, 2.0, 3.0), variances=(0.3, 0.1, 0.4)
        )
        assert selection.is_u_shaped()

    def test_non_monotone_sides_rejected(self):
        selection = SigmaSelection(
            sigmas=(1.0, 2.0, 3.0, 4.0, 5.0),
            variances=(0.3, 0.5, 0.1, 0.4, 0.2),
        )
        assert not selection.is_u_shaped()


class TestHeuristicSigma:
    def test_matches_spacing(self):
        scores = [0.1, 0.2, 0.3, 0.4]
        assert heuristic_sigma(scores) == pytest.approx(4 / 0.3)

    def test_degenerate_single_point(self):
        assert heuristic_sigma([0.5]) == pytest.approx(1 / 0.05)

    def test_degenerate_all_zero(self):
        assert heuristic_sigma([0.0, 0.0]) == pytest.approx(1e4)

    def test_denormal_spread_stays_finite(self):
        # Regression: a denormal spread (5e-324) made size/spread
        # overflow to inf; numerically-identical scores must take the
        # equal-scores fallback instead.
        import numpy as np

        sigma = heuristic_sigma([0.0, 5e-324])
        assert sigma > 0 and np.isfinite(sigma)
        assert sigma == pytest.approx(1e4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heuristic_sigma([])

    def test_close_to_cv_optimum(self, term_scores):
        # The "future work" estimator should land within ~2 orders of
        # magnitude of the CV optimum and give a comparable variance.
        train, control = term_scores
        selection = select_sigma(train, control)
        direct = heuristic_sigma(train)
        v_direct = trs_variance_for_sigma(train, control, direct)
        assert v_direct < 20 * selection.best_variance
