"""Tests for the encrypted snippet store (§6.6 pipeline)."""

import pytest

from repro.crypto.keys import GroupKeyService
from repro.errors import AccessDeniedError
from repro.snippets import (
    CHECKSUM_SIZE,
    DEFAULT_SNIPPET_BYTES,
    SnippetClient,
    SnippetStore,
)


@pytest.fixture()
def world():
    keys = GroupKeyService(master_secret=b"s" * 32)
    keys.register("alice", {"g1"})
    keys.register("bob", {"g2"})
    keys.register("root", {"g1", "g2"})
    store = SnippetStore(keys)
    alice = SnippetClient("alice", keys, store)
    bob = SnippetClient("bob", keys, store)
    root = SnippetClient("root", keys, store)
    return keys, store, alice, bob, root


SNIPPET = "<r><t>Reactor calibration</t><s>dosing schedule for the pilot…</s></r>"


class TestPublishFetch:
    def test_roundtrip(self, world):
        _, _, alice, _, _ = world
        alice.publish("g1", "doc-1", SNIPPET)
        assert alice.fetch("g1", "doc-1") == SNIPPET

    def test_cross_member_fetch(self, world):
        _, _, alice, _, root = world
        alice.publish("g1", "doc-1", SNIPPET)
        assert root.fetch("g1", "doc-1") == SNIPPET

    def test_non_member_gets_nothing(self, world):
        keys, store, alice, bob, _ = world
        alice.publish("g1", "doc-1", SNIPPET)
        snippet_id = alice.snippet_id("g1", "doc-1")
        assert store.fetch("bob", snippet_id) is None

    def test_non_member_cannot_publish(self, world):
        keys, store, _, bob, _ = world
        with pytest.raises(AccessDeniedError):
            store.put("bob", "g1", b"x" * 16, b"ciphertext")

    def test_unknown_doc_is_none(self, world):
        _, _, alice, _, _ = world
        assert alice.fetch("g1", "ghost") is None

    def test_fetch_many(self, world):
        _, _, alice, _, _ = world
        alice.publish("g1", "d1", "one")
        alice.publish("g1", "d2", "two")
        assert alice.fetch_many([("g1", "d1"), ("g1", "d2")]) == ["one", "two"]


class TestServerView:
    def test_server_sees_opaque_ids_and_ciphertext(self, world):
        _, store, alice, _, _ = world
        alice.publish("g1", "doc-1", SNIPPET)
        (snippet_id, (group, ciphertext, _)) = next(iter(store._snippets.items()))
        assert b"doc-1" not in snippet_id
        assert SNIPPET.encode() not in ciphertext
        assert group == "g1"

    def test_republish_overwrites(self, world):
        _, store, alice, _, _ = world
        alice.publish("g1", "doc-1", "v1")
        alice.publish("g1", "doc-1", "v2")
        assert store.num_snippets == 1
        assert alice.fetch("g1", "doc-1") == "v2"


class TestChecksumCaching:
    def test_second_fetch_ships_only_checksum(self, world):
        _, _, alice, _, _ = world
        text = "x" * DEFAULT_SNIPPET_BYTES
        alice.publish("g1", "doc-1", text)
        alice.fetch("g1", "doc-1")
        first = alice.bytes_transferred
        assert first > DEFAULT_SNIPPET_BYTES  # body + checksum
        alice.fetch("g1", "doc-1")
        assert alice.bytes_transferred == first + CHECKSUM_SIZE

    def test_update_invalidates_cache(self, world):
        _, _, alice, _, _ = world
        alice.publish("g1", "doc-1", "v1")
        assert alice.fetch("g1", "doc-1") == "v1"
        alice.publish("g1", "doc-1", "v2 with new content")
        assert alice.fetch("g1", "doc-1") == "v2 with new content"

    def test_caches_are_per_client(self, world):
        _, _, alice, _, root = world
        alice.publish("g1", "doc-1", SNIPPET)
        alice.fetch("g1", "doc-1")
        root.fetch("g1", "doc-1")
        # root paid for the full body despite alice's warm cache.
        assert root.bytes_transferred > CHECKSUM_SIZE
