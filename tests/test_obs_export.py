"""Export formats plus the end-to-end instrumented-query span chain."""

import json

import pytest

from repro.obs import (
    Telemetry,
    metrics_to_dict,
    metrics_to_json,
    metrics_to_text,
    trace_to_dict,
    trace_to_json,
    trace_to_text,
)
from repro.obs.export import METRICS_SCHEMA_VERSION
from repro.obs.trace import Tracer


class TestMetricsExport:
    def _snapshot(self):
        telemetry = Telemetry()
        telemetry.registry.counter("cluster_reads_total").inc(3.0, consistency="one")
        telemetry.registry.histogram("cluster_read_lag_ticks").observe(
            2.0, consistency="one"
        )
        telemetry.registry.gauge("cluster_server_load").set(7.0, server="0")
        return telemetry.registry.snapshot()

    def test_json_is_schema_stamped_and_sorted(self):
        record = json.loads(metrics_to_json(self._snapshot()))
        assert record["schema_version"] == METRICS_SCHEMA_VERSION
        assert list(record["metrics"]) == sorted(record["metrics"])
        assert "monitor" not in record

    def test_monitor_window_is_attached_when_given(self):
        from repro.obs import ClusterMonitor

        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=2, window=4)
        record = metrics_to_dict(telemetry.registry.snapshot(), monitor=monitor)
        assert record["monitor"]["every"] == 2

    def test_text_renders_one_line_per_series(self):
        text = metrics_to_text(self._snapshot())
        assert "cluster_reads_total{consistency=one} 3 slices" in text
        assert "cluster_read_lag_ticks{consistency=one} count=1 mean=2 ticks" in text
        assert "cluster_server_load{server=0} 7 slices" in text


class TestTraceExport:
    def _trace(self):
        ticks = iter(range(1, 100))
        tracer = Tracer(lambda: next(ticks))
        with tracer.span("serve", server=1) as span:
            span.annotate(slices=2)
            with tracer.span("skim"):
                pass
        return tracer.last_trace()

    def test_dict_and_json_round_trip(self):
        trace = self._trace()
        assert json.loads(trace_to_json(trace)) == json.loads(
            json.dumps(trace_to_dict(trace))
        )

    def test_text_is_an_indented_tree(self):
        lines = trace_to_text(self._trace()).splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1].startswith("  serve ")
        assert "[server=1, slices=2]" in lines[1]
        assert lines[2].startswith("    skim ")


@pytest.fixture()
def system(micro_corpus):
    from repro import SystemConfig, ZerberRSystem

    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=22))


class TestEndToEndSpanChain:
    def test_multi_term_query_records_the_full_chain(self, system):
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, telemetry=telemetry
        )
        terms = [
            t
            for t in system.vocabulary.terms_by_frequency()
            if system.vocabulary.document_frequency(t) >= 2
        ][:2]
        assert len(terms) == 2
        client = system.client_for("superuser", server=cluster)
        session = coordinator.open_session(client, terms, k=2)
        while not session.done:
            coordinator.tick()
            cluster.replication_tick()
        trace = next(
            t for t in telemetry.tracer.traces() if t.trace_id == session.trace_id
        )
        names = {span.name for span in trace.spans()}
        # acceptance criterion: session -> coalesce -> envelope -> serve -> skim
        assert {"query", "coalesce", "envelope", "serve", "skim"} <= names
        for span in trace.spans():
            assert span.closed

        def chain(root, path):
            spans = [root]
            for name in path:
                spans = [
                    child
                    for span in spans
                    for child in span.children
                    if child.name == name
                ]
            return spans

        assert chain(trace.root, ["coalesce", "envelope", "serve"])
        assert any(
            span.name == "skim" for span in trace.spans()
        ), "decrypt skim span missing from the session trace"

    def test_metrics_cover_the_scripted_families(self, system):
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, telemetry=telemetry
        )
        terms = list(system.vocabulary.terms_by_frequency())[:2]
        client = system.client_for("superuser", server=cluster)
        session = coordinator.open_session(client, terms, k=2)
        while not session.done:
            coordinator.tick()
            cluster.replication_tick()
        snapshot = telemetry.registry.snapshot()
        assert snapshot["cluster_reads_total"]["series"]
        assert snapshot["coordinator_ticks_total"]["series"][0]["value"] >= 1
        assert snapshot["replication_ticks_total"]["series"][0]["value"] >= 1
        assert snapshot["crypto_skim_elements_total"]["series"][0]["value"] >= 1


class TestKillSwitch:
    def test_suspend_halts_recording_and_resume_restores_it(self, system):
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, telemetry=telemetry
        )
        client = system.client_for("superuser", server=cluster)
        terms = [
            t
            for t in system.vocabulary.terms_by_frequency()
            if system.vocabulary.document_frequency(t) >= 2
        ][:2]

        def run_once():
            session = coordinator.open_session(client, terms, k=2)
            while not session.done:
                coordinator.tick()
                cluster.replication_tick()

        def skim_total():
            snapshot = telemetry.registry.snapshot()
            return snapshot["crypto_skim_elements_total"]["series"][0]["value"]

        run_once()
        recorded = skim_total()
        finished_traces = len(telemetry.tracer.traces())
        assert recorded >= 1 and finished_traces >= 1

        telemetry.suspend()
        run_once()
        assert skim_total() == recorded, "suspended counter still advanced"
        assert len(telemetry.tracer.traces()) == finished_traces, (
            "suspended tracer still recorded a trace"
        )

        telemetry.resume()
        run_once()
        assert skim_total() > recorded, "resumed counter did not advance"
        assert len(telemetry.tracer.traces()) > finished_traces, (
            "resumed tracer did not record a trace"
        )

    def test_suspend_and_resume_are_idempotent(self, system):
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, telemetry=telemetry
        )
        client = system.client_for("superuser", server=cluster)
        telemetry.suspend()
        telemetry.suspend()
        assert not client._obs.enabled
        telemetry.resume()
        telemetry.resume()
        assert client._obs.enabled
        assert client._obs.tracer is telemetry.tracer


class TestEnvelopeTraceAttribution:
    """Each envelope is attributed to the oldest session owning one of
    ITS slices — not the flush-oldest session — so serve and re-route
    spans file under the session tree that asked for them."""

    def _two_sessions_on_distinct_servers(self, system, cluster, coordinator):
        terms = [
            t
            for t in system.vocabulary.terms_by_frequency()
            if system.vocabulary.document_frequency(t) >= 2
        ]
        term_a = terms[0]
        route_a = cluster.route(system.merge_plan.list_of(term_a))
        term_b = next(
            t
            for t in terms[1:]
            if cluster.route(system.merge_plan.list_of(t)) != route_a
        )
        client = system.client_for("superuser", server=cluster)
        first = coordinator.open_session(client, [term_a], k=2)
        second = coordinator.open_session(client, [term_b], k=2)
        route_b = cluster.route(system.merge_plan.list_of(term_b))
        return first, second, route_b

    def test_envelope_carries_owning_sessions_trace(self, system):
        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, telemetry=telemetry
        )
        first, second, route_b = self._two_sessions_on_distinct_servers(
            system, cluster, coordinator
        )
        seen = []
        real = cluster.serve_envelope

        def recording(server_index, envelope, consistency=None):
            seen.append((server_index, envelope.trace_id))
            return real(server_index, envelope, consistency)

        cluster.serve_envelope = recording
        try:
            coordinator.tick()
        finally:
            cluster.serve_envelope = real
        by_server = dict(seen)
        # The envelope holding only the second session's slice is
        # attributed to THAT session, not the flush-oldest one.
        assert by_server[route_b] == second.trace_id
        assert second.trace_id != first.trace_id

    def test_rerouted_envelope_stays_in_owning_session_trace(self, system):
        from repro.errors import StaleEpochError

        telemetry = Telemetry()
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, telemetry=telemetry
        )
        first, second, route_b = self._two_sessions_on_distinct_servers(
            system, cluster, coordinator
        )
        real = cluster.serve_envelope
        rejected = {"done": False}
        retried = []

        def racing(server_index, envelope, consistency=None):
            if server_index == route_b and not rejected["done"]:
                # Simulate a rebalance bumping the epoch after routing.
                rejected["done"] = True
                raise StaleEpochError(envelope.epoch, envelope.epoch + 1)
            if server_index == route_b:
                retried.append(envelope.trace_id)
            return real(server_index, envelope, consistency)

        cluster.serve_envelope = racing
        try:
            coordinator.run_until_complete()
        finally:
            cluster.serve_envelope = real
        assert coordinator.stats.stale_epoch_reroutes == 1
        assert first.done and second.done
        # The retry is attached to the session tree that asked for it.
        assert retried[0] == second.trace_id
        # No orphan roots: every finished trace is a session root, and
        # the re-routed envelope span is annotated inside one of them.
        traces = telemetry.tracer.traces()
        assert traces and all(t.root.name == "query" for t in traces)
        rerouted_spans = [
            span
            for t in traces
            for span in t.spans()
            if span.name == "envelope" and span.attributes.get("rerouted")
        ]
        assert len(rerouted_spans) == 1
