"""Unit tests for the tokenizer."""

import pytest

from repro.text.tokenizer import DEFAULT_STOPWORDS, Tokenizer, simple_tokenize


class TestSimpleTokenize:
    def test_basic_splitting(self):
        assert simple_tokenize("Hello, world!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert simple_tokenize("report v2 2009") == ["report", "v2", "2009"]

    def test_apostrophes_inside_words(self):
        assert simple_tokenize("don't stop") == ["don't", "stop"]

    def test_unicode_letters(self):
        assert simple_tokenize("Vergütung für Arbeit") == ["vergütung", "für", "arbeit"]

    def test_empty_string(self):
        assert simple_tokenize("") == []

    def test_punctuation_only(self):
        assert simple_tokenize("... --- !!!") == []

    def test_underscores_split(self):
        assert simple_tokenize("foo_bar") == ["foo", "bar"]


class TestTokenizer:
    def test_default_matches_simple(self):
        text = "The imClone Report, v2!"
        assert Tokenizer().tokenize(text) == simple_tokenize(text)

    def test_case_preserved_when_disabled(self):
        assert Tokenizer(lowercase=False).tokenize("Ab Cd") == ["Ab", "Cd"]

    def test_stopwords_removed_after_folding(self):
        tokenizer = Tokenizer(stopwords=DEFAULT_STOPWORDS)
        assert tokenizer.tokenize("The cat AND the hat") == ["cat", "hat"]

    def test_min_length_filter(self):
        tokenizer = Tokenizer(min_length=3)
        assert tokenizer.tokenize("a an the cat") == ["the", "cat"]

    def test_max_length_filter(self):
        tokenizer = Tokenizer(max_length=5)
        assert tokenizer.tokenize("short verylongtoken") == ["short"]

    def test_tokens_is_lazy_iterator(self):
        iterator = Tokenizer().tokens("a b c")
        assert next(iterator) == "a"

    def test_tokenize_all_preserves_order(self):
        result = Tokenizer().tokenize_all(["a b", "c"])
        assert result == [["a", "b"], ["c"]]

    def test_invalid_min_length_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=5, max_length=3)

    def test_frozen_dataclass(self):
        tokenizer = Tokenizer()
        with pytest.raises(AttributeError):
            tokenizer.lowercase = False
