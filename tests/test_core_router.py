"""Unit tests for the coordinator (cross-query slice coalescing)."""

import pytest

from repro.core.cluster import ServerCluster
from repro.core.placement import HeatWeightedPlacement
from repro.core.protocol import (
    BatchFetchRequest,
    CoalescedBatchRequest,
    FetchRequest,
)
from repro.core.router import Coordinator
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError, ProtocolError, UnavailableError


@pytest.fixture()
def system(micro_corpus):
    from repro import SystemConfig, ZerberRSystem

    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=22))


@pytest.fixture()
def deployment(system):
    cluster, coordinator = system.deploy_cluster(num_servers=3)
    return system, cluster, coordinator


def _queries(system, num_queries, terms_per_query=2):
    terms = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ]
    queries = []
    for i in range(num_queries):
        start = (i * terms_per_query) % max(1, len(terms) - terms_per_query)
        queries.append(terms[start : start + terms_per_query])
    return queries


class TestCoalescing:
    def test_results_match_direct_path(self, deployment):
        system, cluster, coordinator = deployment
        queries = _queries(system, 6)
        client = system.client_for("superuser", server=cluster)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        results = coordinator.run_queries([(client, q, 4) for q in queries])
        for d, r in zip(direct, results):
            assert r.ranked == d.ranked
            assert [t.elements_transferred for t in r.traces] == [
                t.elements_transferred for t in d.traces
            ]

    def test_fewer_server_calls_than_direct(self, deployment):
        system, cluster, coordinator = deployment
        queries = _queries(system, 6)
        client = system.client_for("superuser", server=cluster)
        before = cluster.total_calls
        for q in queries:
            client.query_multi_batched(q, 4)
        direct_calls = cluster.total_calls - before
        before = cluster.total_calls
        coordinator.run_queries([(client, q, 4) for q in queries])
        coalesced_calls = cluster.total_calls - before
        assert coalesced_calls < direct_calls

    def test_identical_sessions_share_slices(self, deployment):
        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        coordinator.run_queries([(client, query, 4), (client, query, 4)])
        stats = coordinator.stats
        assert stats.slices_shared > 0
        assert stats.slices_sent < stats.slices_requested

    def test_distinct_principals_not_deduplicated(self, deployment):
        system, cluster, coordinator = deployment
        groups = set(system.corpus.groups())
        system.register_user("router-a", groups)
        system.register_user("router-b", groups)
        query = _queries(system, 1)[0]
        a = system.client_for("router-a", server=cluster)
        b = system.client_for("router-b", server=cluster)
        results = coordinator.run_queries([(a, query, 4), (b, query, 4)])
        assert coordinator.stats.slices_shared == 0
        assert results[0].ranked == results[1].ranked

    def test_one_envelope_per_touched_server_per_tick(self, deployment):
        system, cluster, coordinator = deployment
        queries = _queries(system, 5)
        client = system.client_for("superuser", server=cluster)
        coordinator.run_queries([(client, q, 4) for q in queries])
        assert (
            coordinator.stats.server_calls
            <= coordinator.stats.ticks * cluster.num_servers
        )

    def test_sessions_submitted_midway(self, deployment):
        system, cluster, coordinator = deployment
        queries = _queries(system, 2)
        client = system.client_for("superuser", server=cluster)
        first = coordinator.open_session(client, queries[0], 4)
        coordinator.tick()
        second = coordinator.open_session(client, queries[1], 4)
        coordinator.run_until_complete()
        direct = client.query_multi_batched(queries[1], 4)
        assert second.result().ranked == direct.ranked
        assert first.done


class TestFailureAndEpoch:
    def test_unavailable_list_raises_named_error(self, deployment):
        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        list_id = system.merge_plan.list_of(query[0])
        for server_index in cluster.replicas_of(list_id):
            cluster.fail_server(server_index)
        client = system.client_for("superuser", server=cluster)
        coordinator.open_session(client, query, 4)
        with pytest.raises(UnavailableError) as excinfo:
            coordinator.tick()
        assert excinfo.value.list_id == list_id

    def test_stale_epoch_envelope_rejected(self, system):
        cluster, _ = system.deploy_cluster(
            num_servers=2, placement=HeatWeightedPlacement()
        )
        term = system.vocabulary.terms_by_frequency()[0]
        list_id = system.merge_plan.list_of(term)
        request = FetchRequest(
            principal="superuser", list_id=list_id, offset=0, count=2
        )
        envelope = CoalescedBatchRequest(
            batches=(
                BatchFetchRequest(principal="superuser", requests=(request,)),
            ),
            slice_ids=(0,),
            epoch=cluster.placement_epoch + 1,
        )
        with pytest.raises(ProtocolError):
            cluster.serve_envelope(cluster.route(list_id), envelope)

    def test_rebalance_mid_stream_preserves_results(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=3,
            placement=HeatWeightedPlacement(),
            rebalance_every=1,
        )
        queries = _queries(system, 6)
        client = system.client_for("superuser", server=cluster)
        # Warm heat so the first rebalance actually has something to move.
        for q in queries:
            client.query_multi_batched(q, 4)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        results = coordinator.run_queries([(client, q, 4) for q in queries])
        for d, r in zip(direct, results):
            assert r.ranked == d.ranked

    def test_rebalance_every_validated(self, deployment):
        _, cluster, _ = deployment
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, rebalance_every=0)


class TestSessionProtocol:
    def test_deliver_wrong_count_rejected(self, deployment):
        system, cluster, _ = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        session = client.open_multi_session(query, 4)
        with pytest.raises(ProtocolError):
            session.deliver(())

    def test_result_before_done_rejected(self, deployment):
        system, cluster, _ = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        session = client.open_multi_session(query, 4)
        with pytest.raises(ProtocolError):
            session.result()

    def test_run_queries_rejects_concurrent_reuse(self, deployment):
        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        coordinator.open_session(client, query, 4)
        with pytest.raises(ProtocolError):
            coordinator.run_queries([(client, query, 4)])

    def test_run_queries_bad_job_leaves_coordinator_usable(self, deployment):
        """A failing job must not park earlier jobs' sessions forever."""
        from repro.errors import UnknownTermError

        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        with pytest.raises(UnknownTermError):
            coordinator.run_queries(
                [(client, query, 4), (client, ["no-such-term"], 4)]
            )
        assert coordinator.active_sessions == 0
        direct = client.query_multi_batched(query, 4)
        results = coordinator.run_queries([(client, query, 4)])
        assert results[0].ranked == direct.ranked

    def test_session_on_other_backend_rejected(self, deployment):
        """A session bound to a different backend must not be scheduled."""
        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        single_server_client = system.client_for("superuser")
        session = single_server_client.open_multi_session(query, 4)
        with pytest.raises(ConfigurationError):
            coordinator.submit(session)
        assert coordinator.active_sessions == 0

    def test_duplicate_submit_rejected(self, deployment):
        system, cluster, coordinator = deployment
        query = _queries(system, 1)[0]
        client = system.client_for("superuser", server=cluster)
        session = coordinator.open_session(client, query, 4)
        with pytest.raises(ProtocolError):
            coordinator.submit(session)
        coordinator.run_until_complete()
        assert session.done

    def test_failed_run_does_not_wedge_coordinator(self, deployment):
        """An outage mid-run evicts the jobs so later runs can proceed."""
        system, cluster, coordinator = deployment
        queries = _queries(system, 2)
        down_list = system.merge_plan.list_of(queries[0][0])
        for server_index in cluster.replicas_of(down_list):
            cluster.fail_server(server_index)
        client = system.client_for("superuser", server=cluster)
        with pytest.raises(UnavailableError):
            coordinator.run_queries([(client, queries[0], 4)])
        assert coordinator.active_sessions == 0
        for server_index in range(cluster.num_servers):
            cluster.restore_server(server_index)
        results = coordinator.run_queries([(client, queries[1], 4)])
        assert results[0].ranked == client.query_multi_batched(queries[1], 4).ranked

    def test_done_at_submit_sessions_are_pruned(self, deployment):
        system, cluster, coordinator = deployment
        client = system.client_for("superuser", server=cluster)
        session = coordinator.open_session(client, [], 4)
        assert session.done
        assert coordinator.tick() is False
        assert not coordinator._sessions
        assert coordinator.stats.sessions_completed == 1
        assert session.result().ranked == ()

    def test_client_for_caches_per_backend(self, deployment):
        """One client (one nonce sequence) per (principal, backend)."""
        system, cluster, _ = deployment
        a = system.client_for("superuser", server=cluster)
        b = system.client_for("superuser", server=cluster)
        assert a is b
        assert system.client_for("superuser") is system.client_for("superuser")
        assert system.client_for("superuser") is not a


class TestAdmissionControl:
    def test_caps_validated(self, deployment):
        _, cluster, _ = deployment
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, max_slices_per_envelope=0)
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, max_sessions_per_tick=0)

    def test_session_cap_spills_fifo_with_identical_results(self, system):
        cluster, _ = system.deploy_cluster(num_servers=3)
        capped = Coordinator(cluster, max_sessions_per_tick=2)
        queries = _queries(system, 6)
        client = system.client_for("superuser", server=cluster)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        results = capped.run_queries([(client, q, 4) for q in queries])
        for d, r in zip(direct, results):
            assert r.ranked == d.ranked
        assert capped.stats.sessions_spilled > 0
        assert capped.stats.slices_spilled > 0

    def test_session_cap_costs_extra_ticks(self, system):
        cluster_a, uncapped = system.deploy_cluster(num_servers=3)
        cluster_b, _ = system.deploy_cluster(num_servers=3)
        capped = Coordinator(cluster_b, max_sessions_per_tick=1)
        queries = _queries(system, 5)
        client_a = system.client_for("superuser", server=cluster_a)
        client_b = system.client_for("superuser", server=cluster_b)
        uncapped.run_queries([(client_a, q, 4) for q in queries])
        capped.run_queries([(client_b, q, 4) for q in queries])
        assert capped.stats.ticks > uncapped.stats.ticks

    def test_envelope_cap_bounds_batch_sizes(self, system):
        cluster, _ = system.deploy_cluster(num_servers=2)
        cap = 2
        coordinator = Coordinator(cluster, max_slices_per_envelope=cap)
        queries = _queries(system, 6, terms_per_query=1)
        client = system.client_for("superuser", server=cluster)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        for server_index in range(cluster.num_servers):
            cluster.server(server_index).clear_observations()
        results = coordinator.run_queries([(client, q, 4) for q in queries])
        for d, r in zip(direct, results):
            assert r.ranked == d.ranked
        # Single-term sessions can never exceed the cap alone, so every
        # envelope served at most `cap` slices.
        for server_index in range(cluster.num_servers):
            sizes: dict[int, int] = {}
            for obs in cluster.observations_at(server_index):
                if obs.batch_id is not None:
                    sizes[obs.batch_id] = sizes.get(obs.batch_id, 0) + 1
            assert all(size <= cap for size in sizes.values())

    def test_oversized_session_admitted_on_empty_envelope(self, system):
        """A session bigger than the cap cannot be split — it must not
        starve, it rides an otherwise-empty envelope."""
        cluster, _ = system.deploy_cluster(num_servers=1)
        coordinator = Coordinator(cluster, max_slices_per_envelope=1)
        queries = _queries(system, 2, terms_per_query=3)
        client = system.client_for("superuser", server=cluster)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        results = coordinator.run_queries([(client, q, 4) for q in queries])
        for d, r in zip(direct, results):
            assert r.ranked == d.ranked
        assert coordinator.stats.sessions_spilled > 0
