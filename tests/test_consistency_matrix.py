"""The W×R consistency matrix: quorum writes, failover, staleness, sessions.

Companion to ``test_core_replication.py`` (the R side of the matrix and
the log machinery): this file exercises the write-side ack levels, the
primary-failover election, bounded-staleness reads, and the client
session guarantees (read-your-writes + monotonic reads), plus the
dead-primary routing matrix for every read selector.
"""

import pytest

from repro.core.client import ZerberRClient
from repro.core.cluster import ServerCluster
from repro.core.protocol import (
    BatchFetchRequest,
    CoalescedBatchRequest,
    FetchRequest,
)
from repro.core.replication import LagModel, ReadConsistency, WriteConsistency
from repro.core.rstf import RstfModel, train_rstf
from repro.crypto.keys import GroupKeyService
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    QuorumUnavailableError,
    QuorumWriteUnavailableError,
    StaleEpochError,
    UnavailableError,
)
from repro.index.merge import MergePlan
from repro.index.postings import EncryptedPostingElement
from repro.text.analysis import DocumentStats


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"w" * 32)
    svc.register("u", {"g"})
    return svc


def _element(trs, payload=b"cipher"):
    return EncryptedPostingElement(ciphertext=payload, group="g", trs=trs)


def _fetch(cluster, list_id, count=8, consistency=None, **kwargs):
    return cluster.fetch(
        FetchRequest(principal="u", list_id=list_id, offset=0, count=count),
        consistency=consistency,
        **kwargs,
    )


class TestWriteConsistencyEnum:
    def test_coercion(self):
        assert WriteConsistency.coerce(None) is WriteConsistency.ONE
        assert WriteConsistency.coerce("quorum") is WriteConsistency.QUORUM
        assert WriteConsistency.coerce("ALL") is WriteConsistency.ALL
        assert (
            WriteConsistency.coerce(WriteConsistency.QUORUM)
            is WriteConsistency.QUORUM
        )
        with pytest.raises(ConfigurationError):
            WriteConsistency.coerce("majority")

    def test_required_acks(self):
        assert WriteConsistency.ONE.required_acks(3) == 1
        assert WriteConsistency.QUORUM.required_acks(3) == 2
        assert WriteConsistency.QUORUM.required_acks(5) == 3
        assert WriteConsistency.ALL.required_acks(3) == 3
        assert WriteConsistency.QUORUM.required_acks(1) == 1


class TestQuorumWrites:
    def _cluster(self, keys, num_servers=3, replication=3, **kwargs):
        return ServerCluster(
            keys,
            num_lists=1,
            num_servers=num_servers,
            replication=replication,
            **kwargs,
        )

    def test_quorum_write_forces_acks_through_log(self, keys):
        cluster = self._cluster(keys, lag=10)
        cluster.insert("u", 0, _element(0.5, b"x"), consistency="quorum")
        versions = sorted(
            cluster.applied_version(0, s) for s in cluster.replicas_of(0)
        )
        # Primary + one follower hold the op at ack time; the third copy
        # still arrives later through normal lag-driven delivery.
        assert versions == [0, 1, 1]
        stats = cluster.replication_stats
        assert stats.write_ack_syncs == 1
        assert stats.write_ack_ops == 1
        cluster.run_replication_until_quiet()
        assert all(
            cluster.applied_version(0, s) == 1 for s in cluster.replicas_of(0)
        )

    def test_all_write_forces_every_replica(self, keys):
        cluster = self._cluster(keys, lag=10)
        cluster.insert("u", 0, _element(0.5, b"x"), consistency="all")
        assert all(
            cluster.applied_version(0, s) == 1 for s in cluster.replicas_of(0)
        )
        assert cluster.replication_backlog() == {}

    def test_quorum_ack_prefers_most_caught_up_follower(self, keys):
        cluster = self._cluster(keys, lag=LagModel(per_server={1: 1, 2: 10}))
        cluster.insert("u", 0, _element(0.5, b"a"))
        cluster.replication_tick()  # server 1 at v1; server 2 at v0
        cluster.insert("u", 0, _element(0.6, b"b"), consistency="quorum")
        # The nearer follower (1) was synced for the ack; 2 stays behind.
        assert cluster.applied_version(0, 1) == 2
        assert cluster.applied_version(0, 2) == 0

    def test_quorum_write_refused_before_mutation(self, keys):
        cluster = self._cluster(keys, lag=1)
        cluster.insert("u", 0, _element(0.5, b"a"))
        cluster.fail_server(1)
        cluster.fail_server(2)
        with pytest.raises(QuorumWriteUnavailableError) as excinfo:
            cluster.insert("u", 0, _element(0.6, b"b"), consistency="quorum")
        err = excinfo.value
        assert err.list_id == 0
        assert err.needed == 2
        assert err.live_replicas == (0,)
        assert set(err.down_replicas) == {1, 2}
        assert err.paused_replicas == ()
        assert isinstance(err, QuorumUnavailableError)  # legacy handlers
        # Clean no-op refusal: nothing was logged or applied anywhere.
        assert cluster.primary_version(0) == 1
        assert cluster.server(0).list_length(0) == 1

    def test_paused_follower_is_not_ack_capable(self, keys):
        cluster = self._cluster(keys, num_servers=2, replication=2, lag=1)
        cluster.pause_follower(1)
        with pytest.raises(QuorumWriteUnavailableError) as excinfo:
            cluster.insert("u", 0, _element(0.5), consistency="all")
        assert excinfo.value.paused_replicas == (1,)
        # A paused *primary* still applies writes inline (pausing only
        # blocks deliveries TO it), so it stays ack-capable.
        cluster.resume_follower(1)
        cluster.pause_follower(0)
        cluster.insert("u", 0, _element(0.5, b"x"), consistency="all")
        assert cluster.applied_version(0, 0) == 1
        assert cluster.applied_version(0, 1) == 1

    def test_one_write_keeps_durable_primary_idealisation(self, keys):
        cluster = self._cluster(keys, num_servers=2, replication=2, lag=1)
        cluster.fail_server(cluster.replicas_of(0)[0])
        cluster.insert("u", 0, _element(0.5, b"x"))  # W=ONE still lands
        assert cluster.primary_version(0) == 1
        with pytest.raises(QuorumWriteUnavailableError):
            cluster.insert("u", 0, _element(0.6), consistency="quorum")

    def test_cluster_default_write_consistency(self, keys):
        cluster = self._cluster(keys, lag=10, write_consistency="quorum")
        assert cluster.write_consistency is WriteConsistency.QUORUM
        cluster.insert("u", 0, _element(0.5, b"x"))
        at_head = [
            s
            for s in cluster.replicas_of(0)
            if cluster.applied_version(0, s) == 1
        ]
        assert len(at_head) >= 2
        # A per-call ONE override relaxes the default back down.
        cluster.fail_server(cluster.replicas_of(0)[2])
        cluster.insert("u", 0, _element(0.6, b"y"), consistency="one")

    def test_synchronous_path_satisfies_every_level(self, keys):
        cluster = self._cluster(keys)  # zero lag, all alive
        for level in ("one", "quorum", "all"):
            cluster.insert("u", 0, _element(0.5), consistency=level)
        assert cluster.replication_stats.write_ack_syncs == 0
        assert cluster.replication_stats.ops_logged == 0

    def test_batch_writes_honor_consistency(self, keys):
        cluster = self._cluster(keys, lag=10)
        items = [(0, _element(0.1 * i, b"b%d" % i)) for i in range(1, 4)]
        assert cluster.bulk_load("u", items, consistency="all") == 3
        assert all(
            cluster.applied_version(0, s) == 3 for s in cluster.replicas_of(0)
        )
        assert cluster.delete_element("u", 0, b"b1", consistency="all")
        assert all(
            cluster.applied_version(0, s) == 4 for s in cluster.replicas_of(0)
        )

    def test_acked_quorum_write_survives_primary_crash(self, keys):
        """The point of W=QUORUM: kill the primary right after the ack
        and the op is still served — no acked write lost."""
        cluster = self._cluster(keys, lag=10)
        cluster.insert("u", 0, _element(0.9, b"acked"), consistency="quorum")
        cluster.fail_server(cluster.replicas_of(0)[0])
        response = _fetch(cluster, 0, consistency="quorum")
        assert [e.ciphertext for e in response.elements] == [b"acked"]


class TestFailoverElection:
    def _cluster(self, keys, **kwargs):
        kwargs.setdefault("failover_after", 2)
        kwargs.setdefault("lag", 1)
        return ServerCluster(
            keys, num_lists=1, num_servers=3, replication=3, **kwargs
        )

    def test_failover_after_validation(self, keys):
        with pytest.raises(ConfigurationError):
            ServerCluster(keys, num_lists=1, num_servers=1, failover_after=0)

    def test_primary_deposed_after_threshold(self, keys):
        cluster = self._cluster(keys)
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.run_replication_until_quiet()
        old_primary = cluster.replicas_of(0)[0]
        epoch_before = cluster.placement_epoch
        cluster.fail_server(old_primary)
        cluster.replication_tick()  # timer starts
        assert cluster.replicas_of(0)[0] == old_primary  # below threshold
        cluster.replication_tick()
        cluster.replication_tick()  # tick - since >= 2: election fires
        new_primary = cluster.replicas_of(0)[0]
        assert new_primary != old_primary
        assert cluster.placement_epoch == epoch_before + 1
        assert cluster.applied_version(0, new_primary) == 1
        events = cluster.failover_history()
        assert len(events) == 1
        assert events[0].old_primary == old_primary
        assert events[0].new_primary == new_primary
        assert events[0].list_id == 0
        assert cluster.replication_stats.failovers == 1
        # The deposed server stays in the replica set, demoted.
        assert old_primary in cluster.replicas_of(0)

    def test_election_promotes_most_caught_up_replica(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=LagModel(per_server={1: 10, 2: 1}),
            failover_after=2,
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.replication_tick()  # server 2 at v1, server 1 at v0
        assert cluster.applied_version(0, 2) == 1
        cluster.fail_server(0)
        for _ in range(3):
            cluster.replication_tick()
        assert cluster.replicas_of(0)[0] == 2
        assert cluster.replication_stats.failover_ops == 0  # already at head

    def test_election_syncs_winner_to_head_first(self, keys):
        cluster = self._cluster(keys, lag=100)
        cluster.insert("u", 0, _element(0.5, b"x"))  # followers 100 ticks back
        cluster.fail_server(cluster.replicas_of(0)[0])
        for _ in range(3):
            cluster.replication_tick()
        new_primary = cluster.replicas_of(0)[0]
        assert cluster.applied_version(0, new_primary) == 1
        assert cluster.replication_stats.failover_ops == 1
        # Writes acknowledge at the elected primary from the old head.
        cluster.insert("u", 0, _element(0.6, b"y"))
        assert cluster.primary_version(0) == 2
        assert {
            e.ciphertext for e in cluster.server(new_primary).export_list(0)
        } == {b"x", b"y"}

    def test_no_election_without_reachable_candidate(self, keys):
        cluster = self._cluster(keys)
        cluster.fail_server(0)
        cluster.pause_follower(1)
        cluster.fail_server(2)
        for _ in range(5):
            cluster.replication_tick()
        assert cluster.replicas_of(0)[0] == 0  # nobody to elect
        assert cluster.failover_history() == []

    def test_paused_primary_is_deposed_too(self, keys):
        cluster = self._cluster(keys)
        cluster.pause_follower(cluster.replicas_of(0)[0])
        for _ in range(3):
            cluster.replication_tick()
        assert cluster.replicas_of(0)[0] != 0
        assert cluster.unreachable_since()  # 0's timer still live

    def test_restored_old_primary_catches_up_as_follower(self, keys):
        cluster = self._cluster(keys)
        cluster.insert("u", 0, _element(0.5, b"a"))
        cluster.run_replication_until_quiet()
        old_primary = cluster.replicas_of(0)[0]
        cluster.fail_server(old_primary)
        for _ in range(3):
            cluster.replication_tick()
        cluster.insert("u", 0, _element(0.6, b"b"))  # lands on new primary
        cluster.restore_server(old_primary)
        cluster.run_replication_until_quiet()
        cluster.replication_tick()  # reachable again: timer clears
        assert old_primary not in cluster.unreachable_since()
        assert cluster.applied_version(0, old_primary) == 2
        new_primary = cluster.replicas_of(0)[0]
        assert [
            e.ciphertext for e in cluster.server(old_primary).export_list(0)
        ] == [
            e.ciphertext for e in cluster.server(new_primary).export_list(0)
        ]
        # No flap-back: the election is sticky until the NEW primary fails.
        assert cluster.replicas_of(0)[0] != old_primary

    def test_timer_resets_when_primary_recovers_in_time(self, keys):
        cluster = self._cluster(keys, failover_after=3)
        primary = cluster.replicas_of(0)[0]
        cluster.fail_server(primary)
        cluster.replication_tick()
        cluster.replication_tick()
        cluster.restore_server(primary)
        cluster.replication_tick()  # reachable again: timer cleared
        assert cluster.unreachable_since() == {}
        for _ in range(4):
            cluster.replication_tick()
        assert cluster.replicas_of(0)[0] == primary
        assert cluster.failover_history() == []

    def test_stale_epoch_envelope_rejected_after_failover(self, keys):
        cluster = self._cluster(keys)
        cluster.insert("u", 0, _element(0.5, b"x"))
        stale_epoch = cluster.placement_epoch
        envelope = CoalescedBatchRequest(
            batches=(
                BatchFetchRequest(
                    principal="u",
                    requests=(
                        FetchRequest(
                            principal="u", list_id=0, offset=0, count=1
                        ),
                    ),
                ),
            ),
            slice_ids=(0,),
            epoch=stale_epoch,
        )
        cluster.fail_server(cluster.replicas_of(0)[0])
        for _ in range(3):
            cluster.replication_tick()
        target = cluster.replicas_of(0)[0]
        with pytest.raises(StaleEpochError) as excinfo:
            cluster.serve_envelope(target, envelope)
        assert excinfo.value.envelope_epoch == stale_epoch
        assert excinfo.value.current_epoch == cluster.placement_epoch
        assert isinstance(excinfo.value, ProtocolError)

    def test_failover_disabled_by_default(self, keys):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=1
        )
        assert cluster.failover_after is None
        cluster.fail_server(cluster.replicas_of(0)[0])
        for _ in range(10):
            cluster.replication_tick()
        assert cluster.replicas_of(0)[0] == 0
        assert cluster.check_failovers() == []  # direct call: no-op

    def test_restore_failover_state_rejects_unknown_server(self, keys):
        cluster = self._cluster(keys)
        with pytest.raises(ConfigurationError):
            cluster.restore_failover_state(unreachable_since={9: 1})


class TestBoundedStaleness:
    def _lagged(self, keys, **kwargs):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=50, **kwargs
        )
        cluster.insert("u", 0, _element(0.5, b"old"))
        cluster.run_replication_until_quiet(max_ticks=60)
        cluster.insert("u", 0, _element(0.9, b"new"))
        cluster.insert("u", 0, _element(0.8, b"newer"))
        cluster.fail_server(cluster.replicas_of(0)[0])  # follower is 2 behind
        return cluster

    def test_unbounded_one_read_serves_stale(self, keys):
        cluster = self._lagged(keys)
        response = _fetch(cluster, 0, consistency="one")
        assert response.replica_version == 1
        assert cluster.replication_stats.staleness_fallbacks == 0

    def test_bound_violation_escalates_to_fresh(self, keys):
        cluster = self._lagged(keys)
        response = _fetch(cluster, 0, consistency="one", max_staleness=1)
        assert response.replica_version == 3
        assert {e.ciphertext for e in response.elements} == {
            b"old",
            b"new",
            b"newer",
        }
        stats = cluster.replication_stats
        assert stats.staleness_fallbacks == 1
        assert stats.read_reserves == 1

    def test_bound_met_returns_stale_fast(self, keys):
        cluster = self._lagged(keys)
        response = _fetch(cluster, 0, consistency="one", max_staleness=2)
        assert response.replica_version == 1
        assert cluster.replication_stats.staleness_fallbacks == 0

    def test_zero_staleness_means_read_at_head(self, keys):
        cluster = self._lagged(keys)
        response = _fetch(cluster, 0, consistency="one", max_staleness=0)
        assert response.replica_version == 3

    def test_negative_staleness_rejected(self, keys):
        cluster = self._lagged(keys)
        with pytest.raises(ConfigurationError):
            _fetch(cluster, 0, consistency="one", max_staleness=-1)
        with pytest.raises(ConfigurationError):
            cluster.batch_fetch(
                BatchFetchRequest(
                    principal="u",
                    requests=(
                        FetchRequest(
                            principal="u", list_id=0, offset=0, count=1
                        ),
                    ),
                ),
                max_staleness=-1,
            )

    def test_routing_prefers_satisfying_replica(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=LagModel(per_server={1: 1, 2: 50}),
            read_strategy="rotate",
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.replication_tick()  # server 1 at head, server 2 at v0
        cluster.fail_server(0)
        for _ in range(4):
            response = _fetch(cluster, 0, consistency="one", max_staleness=0)
            assert response.replica_version == 1
        # The satisfying replica was routed to directly: no fallbacks.
        assert cluster.replication_stats.staleness_fallbacks == 0

    def test_best_effort_when_no_fresh_replica_reachable(self, keys):
        cluster = self._lagged(keys)
        cluster.pause_follower(cluster.replicas_of(0)[1])
        response = _fetch(cluster, 0, consistency="one", max_staleness=0)
        # Primary down, follower partitioned: stale best-effort beats
        # failing a read the bound cannot possibly satisfy.
        assert response.replica_version == 1


class TestSessionFloors:
    def test_min_version_validation(self):
        with pytest.raises(ProtocolError):
            FetchRequest(
                principal="u", list_id=0, offset=0, count=1, min_version=-1
            )

    def test_floor_violation_repairs_and_reserves(self, keys):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=50
        )
        cluster.insert("u", 0, _element(0.5, b"a"))
        cluster.insert("u", 0, _element(0.6, b"b"))
        cluster.fail_server(cluster.replicas_of(0)[0])
        request = FetchRequest(
            principal="u", list_id=0, offset=0, count=4, min_version=2
        )
        response = cluster.fetch(request, consistency="one")
        assert response.replica_version == 2
        assert cluster.replication_stats.floor_reserves == 1

    def test_floor_above_head_is_clamped(self, keys):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=50
        )
        cluster.insert("u", 0, _element(0.5, b"a"))
        cluster.fail_server(cluster.replicas_of(0)[0])
        request = FetchRequest(
            principal="u", list_id=0, offset=0, count=4, min_version=99
        )
        response = cluster.fetch(request, consistency="one")
        assert response.replica_version == 1  # head, not 99


class TestClientSessionGuarantees:
    @pytest.fixture()
    def client_keys(self):
        svc = GroupKeyService(master_secret=b"s" * 32)
        svc.register("alice", {"g1"})
        return svc

    @pytest.fixture()
    def model(self):
        return RstfModel(
            {
                "apple": train_rstf([0.1, 0.2, 0.3, 0.5], sigma=20.0),
                "pear": train_rstf([0.05, 0.15, 0.4], sigma=20.0),
            }
        )

    @pytest.fixture()
    def plan(self):
        return MergePlan(groups=(("apple", "pear"),), r=2.0)

    def _client(self, client_keys, backend, model, plan):
        return ZerberRClient(
            principal="alice",
            key_service=client_keys,
            server=backend,
            rstf_model=model,
            merge_plan=plan,
        )

    def _doc(self, doc_id, counts):
        return DocumentStats.from_counts(doc_id, counts)

    def test_read_your_writes_through_dead_primary(self, client_keys, model, plan):
        cluster = ServerCluster(
            client_keys,
            num_lists=1,
            num_servers=2,
            replication=2,
            lag=50,
            read_consistency="one",
        )
        alice = self._client(client_keys, cluster, model, plan)
        alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        assert alice.version_floor(0) == cluster.primary_version(0)
        cluster.fail_server(cluster.replicas_of(0)[0])
        # The surviving follower never received the write; alice's floor
        # forces repair + re-serve, so she still reads her own write.
        result = alice.query("apple", k=5)
        assert result.doc_ids() == ["d1"]
        assert cluster.replication_stats.floor_reserves >= 1

    def test_monotonic_reads_raise_the_floor(self, client_keys, model, plan):
        cluster = ServerCluster(
            client_keys,
            num_lists=1,
            num_servers=2,
            replication=2,
            lag=50,
            read_consistency="one",
        )
        writer = self._client(client_keys, cluster, model, plan)
        reader = self._client(client_keys, cluster, model, plan)
        writer.index_document(self._doc("d1", {"apple": 3}), "g1")
        assert reader.version_floor(0) is None
        reader.query("apple", k=5)
        # The read's response version became the reader's floor: later
        # reads can never regress below what this one observed.
        assert reader.version_floor(0) == cluster.primary_version(0)

    def test_floors_only_ever_rise(self, client_keys, model, plan):
        cluster = ServerCluster(
            client_keys, num_lists=1, num_servers=2, replication=2, lag=1
        )
        alice = self._client(client_keys, cluster, model, plan)
        alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        floor = alice.version_floor(0)
        assert floor is not None and floor >= 1
        alice._note_version(0, 0)  # a stale observation cannot lower it
        assert alice.version_floor(0) == floor

    def test_bare_server_keeps_floor_free_requests(self, client_keys, model, plan):
        from repro.core.server import ZerberRServer

        server = ZerberRServer(client_keys, num_lists=1)
        alice = self._client(client_keys, server, model, plan)
        alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        assert alice.version_floor(0) is None
        session = alice.open_multi_session(["apple"], k=2)
        for request in session.pending_requests():
            assert request.min_version is None

    def test_delete_document_raises_floor(self, client_keys, model, plan):
        cluster = ServerCluster(
            client_keys, num_lists=1, num_servers=2, replication=2, lag=1
        )
        alice = self._client(client_keys, cluster, model, plan)
        receipts = alice.index_document_with_receipts(
            self._doc("d1", {"apple": 3}), "g1"
        )
        floor_after_insert = alice.version_floor(0)
        assert alice.delete_document(receipts) >= 1
        assert alice.version_floor(0) > floor_after_insert


class TestDeadPrimaryRoutingMatrix:
    """Every ReadConsistency level routes sanely with the primary down."""

    def _cluster(self, keys, strategy=None):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=1,
            read_strategy=strategy,
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        cluster.run_replication_until_quiet()
        cluster.fail_server(cluster.replicas_of(0)[0])
        return cluster

    @pytest.mark.parametrize("level", ["one", "primary", "quorum"])
    def test_dead_primary_served_by_followers(self, keys, level):
        cluster = self._cluster(keys)
        response = _fetch(cluster, 0, consistency=level)
        assert [e.ciphertext for e in response.elements] == [b"x"]
        assert response.replica_version == 1

    @pytest.mark.parametrize("level", ["one", "primary", "quorum"])
    def test_all_replicas_down_raises(self, keys, level):
        cluster = self._cluster(keys)
        for s in cluster.replicas_of(0)[1:]:
            cluster.fail_server(s)
        with pytest.raises(UnavailableError):
            _fetch(cluster, 0, consistency=level)

    def test_least_loaded_never_selects_downed_server(self, keys):
        cluster = self._cluster(keys, strategy="least-loaded")
        dead = cluster.replicas_of(0)[0]
        baseline = cluster.per_server_load()[dead]
        for _ in range(9):
            _fetch(cluster, 0, count=1, consistency="one")
        assert cluster.per_server_load()[dead] == baseline
        live = [s for s in cluster.replicas_of(0) if s != dead]
        loads = [cluster.per_server_load()[s] for s in live]
        assert max(loads) - min(loads) <= 1  # still balanced over the rest

    def test_rotate_skips_paused_followers(self, keys):
        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=3,
            replication=3,
            lag=0,
            read_strategy="rotate",
        )
        cluster.insert("u", 0, _element(0.5, b"x"))
        paused = cluster.replicas_of(0)[2]
        cluster.pause_follower(paused)
        baseline = cluster.per_server_load()[paused]
        for _ in range(8):
            _fetch(cluster, 0, count=1, consistency="one")
        assert cluster.per_server_load()[paused] == baseline
        assert sum(cluster.per_server_load()) >= 8

    def test_consistency_levels_are_enums_everywhere(self, keys):
        cluster = self._cluster(keys)
        assert cluster.read_consistency is ReadConsistency.PRIMARY
        assert cluster.write_consistency is WriteConsistency.ONE


class TestFailoverAwareWriteRetry:
    """ROADMAP item-3 edge: a refused quorum write parks through the
    pending election instead of surfacing, then retries against the
    promoted primary (``ZerberRClient._write_with_failover_retry``)."""

    @pytest.fixture()
    def client_keys(self):
        svc = GroupKeyService(master_secret=b"s" * 32)
        svc.register("alice", {"g1"})
        return svc

    @pytest.fixture()
    def model(self):
        return RstfModel(
            {
                "apple": train_rstf([0.1, 0.2, 0.3, 0.5], sigma=20.0),
                "pear": train_rstf([0.05, 0.15, 0.4], sigma=20.0),
            }
        )

    @pytest.fixture()
    def plan(self):
        return MergePlan(groups=(("apple", "pear"),), r=2.0)

    def _client(self, client_keys, backend, model, plan):
        return ZerberRClient(
            principal="alice",
            key_service=client_keys,
            server=backend,
            rstf_model=model,
            merge_plan=plan,
        )

    def _cluster(self, client_keys, **kwargs):
        kwargs.setdefault("failover_after", 2)
        kwargs.setdefault("lag", 1)
        kwargs.setdefault("write_consistency", "quorum")
        return ServerCluster(
            client_keys, num_lists=1, num_servers=3, replication=3, **kwargs
        )

    def _doc(self, doc_id, counts):
        return DocumentStats.from_counts(doc_id, counts)

    def test_quorum_write_parks_until_election_then_succeeds(
        self, client_keys, model, plan
    ):
        cluster = self._cluster(client_keys)
        alice = self._client(client_keys, cluster, model, plan)
        alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        cluster.run_replication_until_quiet()
        old_primary = cluster.replicas_of(0)[0]
        cluster.fail_server(old_primary)
        # The write parks: the retry loop drives replication ticks until
        # the election promotes a live follower, then goes through.
        alice.index_document(self._doc("d2", {"apple": 5}), "g1")
        new_primary = cluster.replicas_of(0)[0]
        assert new_primary != old_primary
        assert len(cluster.failover_history()) == 1
        result = alice.query("apple", k=5)
        assert sorted(result.doc_ids()) == ["d1", "d2"]

    def test_delete_parks_through_election_too(self, client_keys, model, plan):
        cluster = self._cluster(client_keys)
        alice = self._client(client_keys, cluster, model, plan)
        receipts = alice.index_document_with_receipts(
            self._doc("d1", {"apple": 3}), "g1"
        )
        cluster.run_replication_until_quiet()
        old_primary = cluster.replicas_of(0)[0]
        cluster.fail_server(old_primary)
        assert alice.delete_document(receipts) >= 1
        assert cluster.replicas_of(0)[0] != old_primary
        assert alice.query("apple", k=5).doc_ids() == []

    def test_surfaces_when_election_cannot_restore_quorum(
        self, client_keys, model, plan
    ):
        cluster = self._cluster(client_keys)
        alice = self._client(client_keys, cluster, model, plan)
        alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        cluster.run_replication_until_quiet()
        replicas = cluster.replicas_of(0)
        cluster.fail_server(replicas[0])
        cluster.fail_server(replicas[1])
        # One live replica of three: even the promoted primary cannot
        # reach QUORUM=2, so the parked write surfaces honestly -- but
        # only after the election actually fired.
        with pytest.raises(QuorumWriteUnavailableError):
            alice.index_document(self._doc("d2", {"apple": 5}), "g1")
        assert len(cluster.failover_history()) == 1
        assert cluster.replicas_of(0)[0] == replicas[2]

    def test_no_parking_when_primary_is_reachable(
        self, client_keys, model, plan
    ):
        # An ack shortfall with a live primary is not election-fixable:
        # the refusal surfaces immediately, no replication ticks driven.
        cluster = self._cluster(client_keys, write_consistency="all")
        alice = self._client(client_keys, cluster, model, plan)
        cluster.fail_server(cluster.replicas_of(0)[2])
        ticks_before = cluster.replication_manager.tick_count
        with pytest.raises(QuorumWriteUnavailableError):
            alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        assert cluster.replication_manager.tick_count == ticks_before

    def test_no_parking_without_failover_machinery(
        self, client_keys, model, plan
    ):
        cluster = self._cluster(client_keys, failover_after=None)
        alice = self._client(client_keys, cluster, model, plan)
        cluster.fail_server(cluster.replicas_of(0)[0])
        ticks_before = cluster.replication_manager.tick_count
        with pytest.raises(QuorumWriteUnavailableError):
            alice.index_document(self._doc("d1", {"apple": 3}), "g1")
        assert cluster.replication_manager.tick_count == ticks_before

    def test_down_primary_refuses_quorum_even_with_follower_acks(
        self, client_keys
    ):
        # The fail_server contract: W > 1 never leans on the durable-
        # primary idealisation.  Both followers are reachable, yet the
        # dead primary alone refuses the write.
        cluster = self._cluster(client_keys, failover_after=None)
        cluster.fail_server(cluster.replicas_of(0)[0])
        element = EncryptedPostingElement(b"ct", group="g1", trs=0.5)
        with pytest.raises(QuorumWriteUnavailableError) as excinfo:
            cluster.insert("alice", 0, element, consistency="quorum")
        assert len(excinfo.value.live_replicas) == 2
        assert cluster.replicas_of(0)[0] in excinfo.value.down_replicas
