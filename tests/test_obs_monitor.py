"""Tests for the cluster monitor: delta windows and fault visibility."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import ClusterMonitor, Telemetry


class FakeCluster:
    """Minimal duck-typed MonitoredCluster with mutable state."""

    def __init__(self) -> None:
        self.read = {0: 0, 1: 0}
        self.write = {0: 0, 1: 0}
        self.load = [0, 0]
        self.backlog = {}
        self.history = []

    def list_heat(self):
        return dict(self.read)

    def list_write_heat(self):
        return dict(self.write)

    def per_server_load(self):
        return list(self.load)

    def replication_backlog(self):
        return dict(self.backlog)

    def failover_history(self):
        return list(self.history)


class TestClusterMonitor:
    def test_validation(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            ClusterMonitor(telemetry, every=0)
        with pytest.raises(ValueError):
            ClusterMonitor(telemetry, window=0)

    def test_samples_are_deltas_not_totals(self):
        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=1, window=8)
        cluster = FakeCluster()
        cluster.read[0] = 5
        monitor.sample(cluster, tick=1)
        cluster.read[0] = 12
        cluster.load = [3, 1]
        monitor.sample(cluster, tick=2)
        assert monitor.read_heat_series(0) == [5, 7]
        assert monitor.server_load_series(0) == [0, 3]
        assert monitor.server_load_series(1) == [0, 1]

    def test_maybe_sample_respects_the_period(self):
        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=4, window=8)
        cluster = FakeCluster()
        sampled = [tick for tick in range(1, 13) if monitor.maybe_sample(cluster, tick)]
        assert sampled == [1, 5, 9]

    def test_window_is_bounded_oldest_dropped(self):
        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=1, window=3)
        cluster = FakeCluster()
        for tick in range(1, 8):
            monitor.sample(cluster, tick)
        assert [sample.tick for sample in monitor.window()] == [5, 6, 7]

    def test_events_are_attributed_to_one_window(self):
        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=1, window=8)
        cluster = FakeCluster()
        monitor.sample(cluster, tick=1)
        cluster.history.append("election-1")
        monitor.sample(cluster, tick=2)
        monitor.sample(cluster, tick=3)
        assert [sample.events for sample in monitor.window()] == [
            [],
            ["election-1"],
            [],
        ]

    def test_backlog_feeds_the_lag_histogram(self):
        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=1, window=8)
        cluster = FakeCluster()
        cluster.backlog = {(0, 1): 4, (1, 0): 2}
        sample = monitor.sample(cluster, tick=1)
        assert sample.replica_backlog == {0: {1: 4}, 1: {0: 2}}
        hist = telemetry.registry.histogram("replication_replica_lag")
        assert hist.count() == 2
        assert hist.sum() == 6.0

    def test_to_dict_is_json_shaped(self):
        import json

        telemetry = Telemetry()
        monitor = ClusterMonitor(telemetry, every=2, window=4)
        cluster = FakeCluster()
        cluster.backlog = {(0, 1): 3}
        monitor.sample(cluster, tick=2)
        data = monitor.to_dict()
        json.dumps(data)
        assert data["every"] == 2
        assert data["samples"][0]["replica_backlog"] == {"0": {"1": 3}}


@pytest.fixture()
def system(micro_corpus):
    from repro import SystemConfig, ZerberRSystem

    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=22))


class TestMonitorIntegration:
    def test_monitor_without_telemetry_is_refused(self, system):
        with pytest.raises(ConfigurationError):
            system.deploy_cluster(num_servers=2, monitor_every=2)

    def test_deploy_attaches_monitor_and_samples_on_ticks(self, system):
        telemetry = Telemetry()
        cluster, _ = system.deploy_cluster(
            num_servers=3,
            replication=2,
            lag=1,
            telemetry=telemetry,
            monitor_every=2,
            monitor_window=16,
        )
        assert cluster.monitor is telemetry.monitor
        for _ in range(6):
            cluster.replication_tick()
        assert 1 <= len(cluster.monitor.window()) <= 16

    def test_election_lands_in_a_monitor_window(self, system):
        from repro.core.replication import FailoverEvent

        telemetry = Telemetry()
        cluster, _ = system.deploy_cluster(
            num_servers=3,
            replication=2,
            lag=1,
            failover_after=2,
            telemetry=telemetry,
            monitor_every=1,
            monitor_window=32,
        )
        primary = cluster.replicas_of(0)[0]
        cluster.fail_server(primary)
        for _ in range(6):
            cluster.replication_tick()
        events = [
            event
            for event in cluster.monitor.events()
            if isinstance(event, FailoverEvent)
        ]
        assert events, "failover election never showed up in a monitor window"
        assert any(event.old_primary == primary for event in events)
        snapshot = telemetry.registry.snapshot()
        elections = snapshot["replication_elections_total"]["series"]
        assert elections and elections[0]["value"] >= 1.0
