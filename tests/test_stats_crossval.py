"""Unit tests for train/control splitting and k-fold indices."""

import numpy as np
import pytest

from repro.stats.crossval import k_fold_indices, train_control_split


class TestTrainControlSplit:
    def test_partition_is_complete_and_disjoint(self):
        items = list(range(30))
        train, control = train_control_split(items, rng=np.random.default_rng(1))
        assert sorted(train + control) == items
        assert not set(train) & set(control)

    def test_control_fraction_respected(self):
        items = list(range(90))
        train, control = train_control_split(
            items, control_fraction=1 / 3, rng=np.random.default_rng(2)
        )
        assert len(control) == 30

    def test_minimum_one_each_side(self):
        train, control = train_control_split(
            [1, 2], control_fraction=0.01, rng=np.random.default_rng(3)
        )
        assert len(train) == 1
        assert len(control) == 1

    def test_single_item_all_train(self):
        train, control = train_control_split([42])
        assert train == [42]
        assert control == []

    def test_deterministic_given_rng(self):
        items = list(range(20))
        a = train_control_split(items, rng=np.random.default_rng(7))
        b = train_control_split(items, rng=np.random.default_rng(7))
        assert a == b

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_control_split([1, 2, 3], control_fraction=0.0)
        with pytest.raises(ValueError):
            train_control_split([1, 2, 3], control_fraction=1.0)


class TestKFold:
    def test_folds_cover_everything(self):
        splits = k_fold_indices(20, 4, rng=np.random.default_rng(1))
        assert len(splits) == 4
        all_validation = np.concatenate([v for _, v in splits])
        assert sorted(all_validation.tolist()) == list(range(20))

    def test_train_and_validation_disjoint(self):
        for train, validation in k_fold_indices(15, 3, rng=np.random.default_rng(2)):
            assert not set(train.tolist()) & set(validation.tolist())

    def test_train_plus_validation_complete(self):
        for train, validation in k_fold_indices(12, 4, rng=np.random.default_rng(3)):
            assert sorted(train.tolist() + validation.tolist()) == list(range(12))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1)

    def test_n_smaller_than_k(self):
        with pytest.raises(ValueError):
            k_fold_indices(3, 5)
