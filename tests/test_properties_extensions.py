"""Property-based tests for the extension modules (cluster routing, IDF)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.cluster import ServerCluster
from repro.core.idf import BucketedIdf
from repro.crypto.keys import GroupKeyService
from repro.text.analysis import DocumentStats


def _keys():
    svc = GroupKeyService(master_secret=b"h" * 32)
    svc.register("u", {"g"})
    return svc


@given(
    num_lists=st.integers(min_value=1, max_value=200),
    num_servers=st.integers(min_value=1, max_value=16),
    replication=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_cluster_routing_invariants(num_lists, num_servers, replication):
    assume(replication <= num_servers)
    cluster = ServerCluster(
        _keys(), num_lists=num_lists, num_servers=num_servers, replication=replication
    )
    for list_id in range(num_lists):
        replicas = cluster.replicas_of(list_id)
        # Exactly `replication` distinct servers, all valid indices.
        assert len(replicas) == replication
        assert len(set(replicas)) == replication
        assert all(0 <= r < num_servers for r in replicas)


@given(
    num_lists=st.integers(min_value=1, max_value=100),
    num_servers=st.integers(min_value=1, max_value=8),
    replication=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_cluster_full_compromise_sees_everything(num_lists, num_servers, replication):
    assume(replication <= num_servers)
    cluster = ServerCluster(
        _keys(), num_lists=num_lists, num_servers=num_servers, replication=replication
    )
    assert cluster.visible_fraction(range(num_servers)) == 1.0


@given(
    num_lists=st.integers(min_value=8, max_value=100),
    num_servers=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_cluster_single_server_fraction_bounded(num_lists, num_servers):
    cluster = ServerCluster(_keys(), num_lists=num_lists, num_servers=num_servers)
    fraction = cluster.visible_fraction([0])
    # Unreplicated: one server holds ceil/floor(num_lists/num_servers) lists.
    assert fraction <= (num_lists // num_servers + 1) / num_lists + 1e-12


@st.composite
def _df_corpus(draw):
    """A corpus described by per-term dfs over n documents."""
    n = draw(st.integers(min_value=4, max_value=40))
    terms = draw(
        st.dictionaries(
            keys=st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=6,
            ),
            values=st.integers(min_value=1, max_value=40),
            min_size=2,
            max_size=15,
        )
    )
    # The padding term below appears in EVERY document; a drawn term with
    # the same name would make the declared dfs lie about it.
    terms.pop("base", None)
    docs = []
    for i in range(n):
        counts = {"base": 1}
        for term, df in terms.items():
            if i < min(df, n):
                counts[term] = 1
        docs.append(DocumentStats.from_counts(f"d{i}", counts))
    return docs, {t: min(df, n) for t, df in terms.items()}, n


@given(data=_df_corpus(), num_buckets=st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_idf_bucket_antitone_in_df(data, num_buckets):
    """Higher df can never land in a strictly higher bucket (IDF is
    antitone in df, buckets are monotone in IDF)."""
    docs, dfs, n = data
    idf = BucketedIdf.train(docs, num_buckets=num_buckets)
    terms = sorted(dfs, key=lambda t: dfs[t])
    for a, b in zip(terms, terms[1:]):
        if dfs[a] < dfs[b]:
            assert idf.bucket(a) >= idf.bucket(b)


@given(data=_df_corpus(), num_buckets=st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_idf_weights_monotone_in_bucket(data, num_buckets):
    docs, dfs, n = data
    idf = BucketedIdf.train(docs, num_buckets=num_buckets)
    weights = [idf._weights[b] for b in range(num_buckets)]
    assert all(w1 <= w2 + 1e-9 for w1, w2 in zip(weights, weights[1:]))


@given(data=_df_corpus(), num_buckets=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_idf_leakage_bounds(data, num_buckets):
    docs, dfs, n = data
    idf = BucketedIdf.train(docs, num_buckets=num_buckets)
    assert 0.0 <= idf.empirical_leakage_bits() <= idf.leakage_bits() + 1e-9
    assert idf.leakage_bits() == np.log2(num_buckets)
