"""Unit tests for per-document term statistics (Eq. 4 inputs)."""

import pytest

from repro.text.analysis import (
    DocumentStats,
    normalized_tf,
    raw_tf,
    term_frequencies,
)


class TestFrequencyHelpers:
    def test_term_frequencies_counts(self):
        counts = term_frequencies(["a", "b", "a"])
        assert counts == {"a": 2, "b": 1}

    def test_raw_tf(self):
        assert raw_tf(["x", "y", "x"], "x") == 2

    def test_raw_tf_absent(self):
        assert raw_tf(["x"], "z") == 0

    def test_normalized_tf_value(self):
        assert normalized_tf(3, 12) == 0.25

    def test_normalized_tf_full_document(self):
        assert normalized_tf(5, 5) == 1.0

    def test_normalized_tf_zero_length_rejected(self):
        with pytest.raises(ValueError):
            normalized_tf(0, 0)

    def test_normalized_tf_negative_rejected(self):
        with pytest.raises(ValueError):
            normalized_tf(-1, 5)

    def test_normalized_tf_exceeding_length_rejected(self):
        with pytest.raises(ValueError):
            normalized_tf(6, 5)


class TestDocumentStats:
    def test_from_tokens(self):
        stats = DocumentStats.from_tokens("d1", ["a", "b", "a"])
        assert stats.length == 3
        assert stats.tf("a") == 2

    def test_from_counts(self):
        stats = DocumentStats.from_counts("d1", {"a": 2, "b": 1})
        assert stats.length == 3

    def test_from_counts_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DocumentStats.from_counts("d1", {"a": 0})

    def test_rscore_matches_eq4(self):
        stats = DocumentStats.from_counts("d1", {"a": 2, "b": 6})
        assert stats.rscore("a") == pytest.approx(2 / 8)

    def test_rscore_absent_term_is_zero(self):
        stats = DocumentStats.from_counts("d1", {"a": 1})
        assert stats.rscore("zzz") == 0.0

    def test_terms_set(self):
        stats = DocumentStats.from_counts("d1", {"a": 1, "b": 2})
        assert stats.terms() == {"a", "b"}

    def test_container_protocol(self):
        stats = DocumentStats.from_counts("d1", {"a": 1})
        assert "a" in stats
        assert "b" not in stats
        assert len(stats) == 1

    def test_empty_token_stream(self):
        stats = DocumentStats.from_tokens("d1", [])
        assert stats.length == 0
        with pytest.raises(ValueError):
            stats.rscore("a")
