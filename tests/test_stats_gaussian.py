"""Unit tests for the Gaussian-sum / logistic machinery (Eq. 5–8)."""

import numpy as np
import pytest

from repro.stats.gaussian import (
    gaussian_cdf,
    gaussian_pdf,
    gaussian_sum_cdf,
    gaussian_sum_pdf,
    logistic_cdf,
    logistic_sum_cdf,
)


class TestGaussianPdf:
    def test_peak_at_mean(self):
        x = np.linspace(-1, 1, 201)
        values = gaussian_pdf(x, mu=0.2, sigma=5.0)
        assert x[np.argmax(values)] == pytest.approx(0.2, abs=0.02)

    def test_sigma_is_steepness(self):
        # Higher sigma = narrower bell = taller peak (paper convention).
        low = gaussian_pdf(0.0, mu=0.0, sigma=1.0)
        high = gaussian_pdf(0.0, mu=0.0, sigma=10.0)
        assert high > low

    def test_integrates_to_one(self):
        x = np.linspace(-5, 5, 20001)
        values = gaussian_pdf(x, mu=0.0, sigma=2.0)
        assert np.trapezoid(values, x) == pytest.approx(1.0, abs=1e-4)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_pdf(0.0, sigma=0.0)


class TestGaussianCdf:
    def test_half_at_mean(self):
        assert float(gaussian_cdf(0.3, mu=0.3, sigma=4.0)) == pytest.approx(0.5)

    def test_limits(self):
        assert float(gaussian_cdf(10.0, mu=0.0, sigma=2.0)) == pytest.approx(1.0)
        assert float(gaussian_cdf(-10.0, mu=0.0, sigma=2.0)) == pytest.approx(0.0)

    def test_monotone(self):
        x = np.linspace(-3, 3, 101)
        values = gaussian_cdf(x, mu=0.0, sigma=1.5)
        assert np.all(np.diff(values) >= 0)

    def test_matches_pdf_derivative(self):
        x = np.linspace(-2, 2, 4001)
        cdf = gaussian_cdf(x, mu=0.1, sigma=2.0)
        pdf = gaussian_pdf(x, mu=0.1, sigma=2.0)
        numeric = np.gradient(cdf, x)
        assert np.allclose(numeric[100:-100], pdf[100:-100], atol=1e-3)


class TestLogisticCdf:
    def test_half_at_mean(self):
        assert float(logistic_cdf(0.5, mu=0.5, sigma=10.0)) == pytest.approx(0.5)

    def test_range_open_unit_interval(self):
        # Open interval holds up to float64 resolution; use a range where
        # exp() does not underflow to exactly 0/1.
        values = logistic_cdf(np.linspace(-30, 30, 11), mu=0.0, sigma=1.0)
        assert np.all(values > 0.0)
        assert np.all(values < 1.0)

    def test_no_overflow_extreme_inputs(self):
        assert float(logistic_cdf(-1e6, mu=0.0, sigma=10.0)) == pytest.approx(0.0)
        assert float(logistic_cdf(1e6, mu=0.0, sigma=10.0)) == pytest.approx(1.0)

    def test_steeper_sigma_sharper_transition(self):
        soft = float(logistic_cdf(0.1, mu=0.0, sigma=1.0))
        sharp = float(logistic_cdf(0.1, mu=0.0, sigma=100.0))
        assert sharp > soft


class TestSums:
    MUS = [0.1, 0.2, 0.4, 0.7]

    def test_sum_pdf_is_mean_of_bells(self):
        x = 0.2
        individual = [gaussian_pdf(x, mu=m, sigma=20.0) for m in self.MUS]
        combined = gaussian_sum_pdf(x, self.MUS, sigma=20.0)
        assert float(combined) == pytest.approx(float(np.mean(individual)))

    def test_sum_cdf_limits(self):
        assert float(gaussian_sum_cdf(100.0, self.MUS, 20.0)) == pytest.approx(1.0)
        assert float(gaussian_sum_cdf(-100.0, self.MUS, 20.0)) == pytest.approx(0.0)

    def test_logistic_sum_cdf_monotone(self):
        x = np.linspace(0, 1, 101)
        values = logistic_sum_cdf(x, self.MUS, sigma=50.0)
        assert np.all(np.diff(values) >= 0)

    def test_logistic_approximates_erf_form(self):
        # The two curve families agree qualitatively: same midpoints, both
        # in [0,1]; check values stay within a coarse tolerance with
        # steepness-matched parameters (logistic(x) ≈ Φ(1.702x)).
        x = np.linspace(0.0, 1.0, 51)
        logistic = logistic_sum_cdf(x, self.MUS, sigma=1.702 * 30.0)
        erf = gaussian_sum_cdf(x, self.MUS, sigma=30.0)
        assert np.max(np.abs(logistic - erf)) < 0.05

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            logistic_sum_cdf(0.5, [], sigma=10.0)
        with pytest.raises(ValueError):
            gaussian_sum_pdf(0.5, [], sigma=10.0)

    def test_scalar_and_array_agree(self):
        scalar = float(logistic_sum_cdf(0.3, self.MUS, 25.0))
        array = logistic_sum_cdf(np.array([0.3]), self.MUS, 25.0)
        assert scalar == pytest.approx(float(array[0]))
