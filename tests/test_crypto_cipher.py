"""Unit tests for the authenticated stream cipher."""

import pytest

from repro.crypto.cipher import (
    NONCE_SIZE,
    NonceSequence,
    StreamCipher,
    TAG_SIZE,
    decrypt,
    encrypt,
)
from repro.errors import AuthenticationError

KEY = b"k" * 32
NONCE = b"n" * NONCE_SIZE


class TestStreamCipher:
    def test_roundtrip(self):
        cipher = StreamCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"hello", NONCE)) == b"hello"

    def test_empty_plaintext(self):
        cipher = StreamCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"", NONCE)) == b""

    def test_ciphertext_layout(self):
        ciphertext = StreamCipher(KEY).encrypt(b"abc", NONCE)
        assert len(ciphertext) == NONCE_SIZE + 3 + TAG_SIZE
        assert ciphertext[:NONCE_SIZE] == NONCE

    def test_wrong_key_fails_auth(self):
        ciphertext = StreamCipher(KEY).encrypt(b"secret", NONCE)
        with pytest.raises(AuthenticationError):
            StreamCipher(b"x" * 32).decrypt(ciphertext)

    def test_tampered_body_fails_auth(self):
        ciphertext = bytearray(StreamCipher(KEY).encrypt(b"secret", NONCE))
        ciphertext[NONCE_SIZE] ^= 0x01
        with pytest.raises(AuthenticationError):
            StreamCipher(KEY).decrypt(bytes(ciphertext))

    def test_tampered_tag_fails_auth(self):
        ciphertext = bytearray(StreamCipher(KEY).encrypt(b"secret", NONCE))
        ciphertext[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            StreamCipher(KEY).decrypt(bytes(ciphertext))

    def test_truncated_ciphertext_fails(self):
        with pytest.raises(AuthenticationError):
            StreamCipher(KEY).decrypt(b"short")

    def test_try_decrypt_returns_none_on_failure(self):
        ciphertext = StreamCipher(KEY).encrypt(b"m", NONCE)
        assert StreamCipher(b"y" * 32).try_decrypt(ciphertext) is None

    def test_try_decrypt_success(self):
        cipher = StreamCipher(KEY)
        assert cipher.try_decrypt(cipher.encrypt(b"m", NONCE)) == b"m"

    def test_wrong_nonce_size_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(KEY).encrypt(b"m", b"tiny")

    def test_nonce_changes_ciphertext(self):
        cipher = StreamCipher(KEY)
        a = cipher.encrypt(b"m", b"a" * NONCE_SIZE)
        b = cipher.encrypt(b"m", b"b" * NONCE_SIZE)
        assert a != b

    def test_ciphertext_looks_random(self):
        # §6.6: "query response is represented by a random bit string and
        # standard HTML compression is ineffective" — check incompressibility.
        import zlib

        plaintext = b"A" * 2048  # highly compressible input
        ciphertext = StreamCipher(KEY).encrypt(plaintext, NONCE)
        body = ciphertext[NONCE_SIZE:-TAG_SIZE]
        assert len(zlib.compress(body, 9)) > 0.95 * len(body)


class TestHelpers:
    def test_module_level_roundtrip(self):
        assert decrypt(KEY, encrypt(KEY, b"data", NONCE)) == b"data"


class TestNonceSequence:
    def test_unique(self):
        seq = NonceSequence(KEY)
        nonces = {seq.next() for _ in range(500)}
        assert len(nonces) == 500

    def test_size(self):
        assert len(NonceSequence(KEY).next()) == NONCE_SIZE

    def test_label_separation(self):
        a = NonceSequence(KEY, label="alice")
        b = NonceSequence(KEY, label="bob")
        assert a.next() != b.next()

    def test_deterministic_per_label(self):
        a = NonceSequence(KEY, label="x")
        b = NonceSequence(KEY, label="x")
        assert a.next() == b.next()
