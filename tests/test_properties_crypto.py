"""Property-based tests for the crypto substrate: roundtrip for all inputs,
authentication rejects every single-bit tamper."""

from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import NONCE_SIZE, StreamCipher
from repro.crypto.prf import Prf, derive_key
from repro.errors import AuthenticationError
from repro.index.postings import PostingElement

key_strategy = st.binary(min_size=16, max_size=64)
nonce_strategy = st.binary(min_size=NONCE_SIZE, max_size=NONCE_SIZE)
plaintext_strategy = st.binary(min_size=0, max_size=512)


@given(key=key_strategy, nonce=nonce_strategy, plaintext=plaintext_strategy)
@settings(max_examples=150, deadline=None)
def test_roundtrip(key, nonce, plaintext):
    cipher = StreamCipher(key)
    assert cipher.decrypt(cipher.encrypt(plaintext, nonce)) == plaintext


@given(
    key=key_strategy,
    nonce=nonce_strategy,
    plaintext=st.binary(min_size=1, max_size=128),
    flip=st.integers(min_value=0),
)
@settings(max_examples=150, deadline=None)
def test_any_bitflip_detected(key, nonce, plaintext, flip):
    cipher = StreamCipher(key)
    ciphertext = bytearray(cipher.encrypt(plaintext, nonce))
    position = flip % (len(ciphertext) * 8)
    ciphertext[position // 8] ^= 1 << (position % 8)
    try:
        cipher.decrypt(bytes(ciphertext))
    except AuthenticationError:
        return
    raise AssertionError("tampered ciphertext accepted")


@given(key=key_strategy, label_a=st.text(max_size=16), label_b=st.text(max_size=16))
@settings(max_examples=100, deadline=None)
def test_derive_key_injective_in_label(key, label_a, label_b):
    if label_a != label_b:
        assert derive_key(key, label_a) != derive_key(key, label_b)
    else:
        assert derive_key(key, label_a) == derive_key(key, label_b)


@given(key=key_strategy, message=st.binary(max_size=64))
@settings(max_examples=100, deadline=None)
def test_prf_unit_in_range(key, message):
    value = Prf(key).evaluate_unit(message)
    assert 0.0 <= value < 1.0


@given(
    term=st.text(min_size=1, max_size=20),
    doc_id=st.text(min_size=1, max_size=20),
    tf=st.integers(min_value=1, max_value=1000),
    extra=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=150, deadline=None)
def test_posting_element_serialisation_roundtrip(term, doc_id, tf, extra):
    element = PostingElement(
        term=term, doc_id=doc_id, tf=tf, doc_length=tf + extra
    )
    assert PostingElement.from_bytes(element.to_bytes()) == element


@given(
    key=key_strategy,
    nonce=nonce_strategy,
    term=st.text(min_size=1, max_size=10),
    tf=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_encrypted_element_end_to_end(key, nonce, term, tf):
    element = PostingElement(term=term, doc_id="d", tf=tf, doc_length=tf + 5)
    cipher = StreamCipher(key)
    ciphertext = cipher.encrypt(element.to_bytes(), nonce)
    assert PostingElement.from_bytes(cipher.decrypt(ciphertext)) == element
