"""Tests for the event-driven core: the virtual-time loop, arrival-driven
coordinator scheduling, round pipelining, backpressure, and the
lockstep-equivalence guarantee the refactor promised (the legacy
``tick()`` driver is byte-identical to the pre-loop coordinator at zero
round latency)."""

import pytest

from repro.core.cluster import ServerCluster
from repro.core.eventloop import (
    BACKGROUND,
    FOREGROUND,
    MAINTENANCE,
    EventLoop,
)
from repro.core.protocol import BackpressureSignal
from repro.core.router import Coordinator
from repro.crypto.keys import GroupKeyService
from repro.errors import BackpressureError, ConfigurationError, ProtocolError


class TestEventLoopScheduling:
    def test_fires_in_tick_order(self):
        loop = EventLoop()
        fired = []
        loop.call_at(3, lambda: fired.append("c"))
        loop.call_at(1, lambda: fired.append("a"))
        loop.call_at(2, lambda: fired.append("b"))
        loop.advance(4)
        assert fired == ["a", "b", "c"]
        assert loop.now == 4
        assert loop.events_fired == 3

    def test_priority_orders_within_a_tick(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1, lambda: fired.append("maint"), priority=MAINTENANCE)
        loop.call_at(1, lambda: fired.append("bg"), priority=BACKGROUND)
        loop.call_at(1, lambda: fired.append("fg"), priority=FOREGROUND)
        loop.advance(2)
        assert fired == ["fg", "bg", "maint"]

    def test_fifo_within_tick_and_priority(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.call_at(1, lambda i=i: fired.append(i))
        loop.advance(2)
        assert fired == [0, 1, 2, 3, 4]

    def test_past_tick_clamps_to_now(self):
        loop = EventLoop(start_tick=10)
        fired = []
        handle = loop.call_at(3, lambda: fired.append("late"))
        assert handle.tick == 10
        loop.advance(1)
        assert fired == ["late"]

    def test_same_window_events_fire_in_same_advance(self):
        # The lockstep-compat contract: events scheduled DURING a tick's
        # processing, due within the window, fire before advance returns.
        loop = EventLoop()
        fired = []

        def chain():
            fired.append("first")
            loop.call_at(loop.now, lambda: fired.append("second"))

        loop.call_at(0, chain)
        loop.advance(1)
        assert fired == ["first", "second"]

    def test_cancel_is_a_noop_firing(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1, lambda: fired.append("x"))
        loop.cancel(handle)
        loop.cancel(handle)  # idempotent
        assert loop.pending() == 0
        loop.advance(2)
        assert fired == []

    def test_call_later_validates_delay(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.call_later(-1, lambda: None)

    def test_advance_validates_ticks(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.advance(0)

    def test_start_tick_validated(self):
        with pytest.raises(ConfigurationError):
            EventLoop(start_tick=-1)

    def test_seeded_rng_is_deterministic(self):
        a, b = EventLoop(seed=7), EventLoop(seed=7)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]


class TestPeriodicTasks:
    def test_every_fires_at_period_cadence(self):
        loop = EventLoop()
        fires = []
        loop.every(3, lambda: fires.append(loop.now), name="sweep")
        loop.advance(9)
        # First firing at now + period - 1 (end of the period-th tick).
        assert fires == [2, 5, 8]

    def test_period_one_fires_every_tick(self):
        loop = EventLoop()
        fires = []
        loop.every(1, lambda: fires.append(loop.now), name="delivery")
        loop.advance(4)
        assert fires == [0, 1, 2, 3]

    def test_first_at_override(self):
        loop = EventLoop()
        fires = []
        loop.every(4, lambda: fires.append(loop.now), name="rebal", first_at=0)
        loop.advance(9)
        assert fires == [0, 4, 8]

    def test_cancel_stops_future_firings(self):
        loop = EventLoop()
        task = loop.every(1, lambda: None, name="d")
        loop.advance(3)
        assert task.fires == 3
        task.cancel()
        loop.advance(3)
        assert task.fires == 3
        assert loop.tasks() == []

    def test_period_validated(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.every(0, lambda: None, name="bad")

    def test_daemons_do_not_block_quiescence(self):
        loop = EventLoop()
        loop.every(1, lambda: None, name="daemon")
        assert loop.pending() == 0
        fired = []
        loop.call_at(2, lambda: fired.append("work"))
        ticks = loop.run_until_quiet()
        assert fired == ["work"]
        assert ticks == 3  # advanced through tick 2

    def test_run_until_quiet_raises_on_livelock(self):
        loop = EventLoop()

        def reschedule():
            loop.call_at(loop.now + 1, reschedule)

        loop.call_at(0, reschedule)
        with pytest.raises(ProtocolError):
            loop.run_until_quiet(max_ticks=10)

    def test_non_daemon_periodic_keeps_loop_alive(self):
        loop = EventLoop()
        task = loop.every(1, lambda: None, name="fg", daemon=False)
        assert loop.pending() == 1
        loop.advance(1)
        assert loop.pending() == 1  # rescheduled itself as foreground
        task.cancel()
        loop.advance(1)
        assert loop.pending() == 0


@pytest.fixture()
def system(micro_corpus):
    from repro import SystemConfig, ZerberRSystem

    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=22))


def _queries(system, num_queries, terms_per_query=2):
    terms = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if system.vocabulary.document_frequency(t) >= 2
    ]
    queries = []
    for i in range(num_queries):
        start = (i * terms_per_query) % max(1, len(terms) - terms_per_query)
        queries.append(terms[start : start + terms_per_query])
    return queries


class TestArrivalDrivenScheduling:
    def test_arrivals_match_direct_path(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=3)
        client = system.client_for("superuser", server=cluster)
        queries = _queries(system, 4)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        sessions = [client.open_multi_session(q, 4) for q in queries]
        # Staggered arrivals on the virtual clock, no external tick().
        for i, session in enumerate(sessions):
            coordinator.submit_arrival(session, at=i)
        coordinator.drain()
        for session, expected in zip(sessions, direct):
            assert session.done
            assert session.result().ranked == expected.ranked
        assert coordinator.stats.sessions_completed == len(sessions)

    def test_future_arrival_waits_for_its_tick(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=2)
        client = system.client_for("superuser", server=cluster)
        session = client.open_multi_session(_queries(system, 1)[0], 4)
        coordinator.submit_arrival(session, at=5)
        coordinator.loop.advance(5)  # ticks 0..4: not yet admitted
        assert coordinator.active_sessions == 0
        coordinator.drain()
        assert session.done

    def test_double_arrival_admits_once(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=2)
        client = system.client_for("superuser", server=cluster)
        session = client.open_multi_session(_queries(system, 1)[0], 4)
        coordinator.submit_arrival(session, at=0)
        coordinator.submit_arrival(session, at=0)
        coordinator.drain()
        assert session.done
        assert coordinator.stats.sessions_completed == 1

    def test_evicted_session_in_flight_delivery_noops(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, round_latency=3
        )
        client = system.client_for("superuser", server=cluster)
        session = client.open_multi_session(_queries(system, 1)[0], 4)
        coordinator.submit_arrival(session, at=0)
        coordinator.loop.advance(1)  # flush dispatched; delivery at tick 3
        coordinator.evict(session)
        coordinator.drain()  # the deferred delivery fires as a no-op
        assert not session.done
        assert coordinator.stats.sessions_completed == 0


class TestRoundPipelining:
    def test_round_latency_preserves_results(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, round_latency=2
        )
        client = system.client_for("superuser", server=cluster)
        queries = _queries(system, 4)
        direct = [client.query_multi_batched(q, 4) for q in queries]
        sessions = [client.open_multi_session(q, 4) for q in queries]
        for i, session in enumerate(sessions):
            coordinator.submit_arrival(session, at=i)
        coordinator.drain()
        for session, expected in zip(sessions, direct):
            assert session.result().ranked == expected.ranked

    def test_staggered_arrivals_overlap_rounds(self, system):
        # With deliveries deferred 2 ticks, a session arriving mid-flight
        # builds its envelope while earlier rounds are still in the air.
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, round_latency=2
        )
        client = system.client_for("superuser", server=cluster)
        for i, q in enumerate(_queries(system, 6)):
            coordinator.submit_arrival(client.open_multi_session(q, 4), at=i)
        coordinator.drain()
        assert coordinator.stats.pipeline_overlap > 0

    def test_lockstep_never_overlaps(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=3)
        client = system.client_for("superuser", server=cluster)
        coordinator.run_queries(
            [(client, q, 4) for q in _queries(system, 6)]
        )
        assert coordinator.stats.pipeline_overlap == 0


class TestBackpressure:
    def test_submit_sheds_past_queue_depth(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, max_queue_depth=2
        )
        client = system.client_for("superuser", server=cluster)
        queries = _queries(system, 3)
        coordinator.submit(client.open_multi_session(queries[0], 4))
        coordinator.submit(client.open_multi_session(queries[1], 4))
        with pytest.raises(BackpressureError) as excinfo:
            coordinator.submit(client.open_multi_session(queries[2], 4))
        assert excinfo.value.retry_after_ticks >= 1
        signal = excinfo.value.signal
        assert isinstance(signal, BackpressureSignal)
        assert signal.reason == "queue"
        assert signal.queue_depth == 2
        assert coordinator.stats.backpressure_sheds == 1
        assert coordinator.sheds == [signal]
        # Nothing was parked; the accepted sessions still complete.
        assert coordinator.active_sessions == 2
        coordinator.run_until_complete()

    def test_per_principal_credits(self, system):
        groups = set(system.corpus.groups())
        system.register_user("bp-a", groups)
        system.register_user("bp-b", groups)
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, credits_per_principal=1
        )
        a = system.client_for("bp-a", server=cluster)
        b = system.client_for("bp-b", server=cluster)
        query = _queries(system, 1)[0]
        coordinator.submit(a.open_multi_session(query, 4))
        with pytest.raises(BackpressureError) as excinfo:
            coordinator.submit(a.open_multi_session(query, 4))
        assert excinfo.value.signal.reason == "credits"
        # One principal exhausting its credits never starves another.
        coordinator.submit(b.open_multi_session(query, 4))
        assert coordinator.active_sessions == 2

    def test_shed_arrival_retries_and_completes(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, max_queue_depth=2
        )
        client = system.client_for("superuser", server=cluster)
        sessions = [
            client.open_multi_session(q, 4) for q in _queries(system, 6)
        ]
        for session in sessions:
            coordinator.submit_arrival(session, at=0)
        coordinator.drain()
        # Overload degraded into deferred admission, not lost work.
        assert coordinator.stats.backpressure_sheds > 0
        assert all(session.done for session in sessions)
        assert coordinator.stats.sessions_completed == len(sessions)

    def test_shed_without_retry_drops_the_arrival(self, system):
        cluster, coordinator = system.deploy_cluster(
            num_servers=2, max_queue_depth=1
        )
        client = system.client_for("superuser", server=cluster)
        queries = _queries(system, 2)
        kept = client.open_multi_session(queries[0], 4)
        dropped = client.open_multi_session(queries[1], 4)
        coordinator.submit_arrival(kept, at=0)
        coordinator.submit_arrival(dropped, at=0, retry_on_shed=False)
        coordinator.drain()
        assert kept.done
        assert not dropped.done
        assert coordinator.stats.backpressure_sheds == 1

    def test_bounds_validated(self, system):
        cluster, _ = system.deploy_cluster(num_servers=2)
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, credits_per_principal=0)
        with pytest.raises(ConfigurationError):
            Coordinator(cluster, round_latency=-1)

    def test_signal_validates_itself(self):
        with pytest.raises(ProtocolError):
            BackpressureSignal(
                principal="p",
                tick=0,
                retry_after_ticks=0,
                queue_depth=1,
                limit=1,
                reason="queue",
            )
        with pytest.raises(ProtocolError):
            BackpressureSignal(
                principal="p",
                tick=0,
                retry_after_ticks=1,
                queue_depth=1,
                limit=1,
                reason="because",
            )


class TestBackgroundDaemons:
    @pytest.fixture()
    def keys(self):
        svc = GroupKeyService(master_secret=b"w" * 32)
        svc.register("u", {"g"})
        return svc

    def test_delivery_daemon_period_validated(self, keys):
        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2
        )
        with pytest.raises(ConfigurationError):
            cluster.register_background_tasks(EventLoop(), delivery_every=0)
        with pytest.raises(ConfigurationError):
            cluster.register_background_tasks(
                EventLoop(), anti_entropy_every=0
            )

    def test_anti_entropy_detaches_onto_the_loop(self, keys):
        from repro.core.protocol import EncryptedPostingElement

        cluster = ServerCluster(
            keys,
            num_lists=1,
            num_servers=2,
            replication=2,
            lag=100,  # deliveries far out: only the sweep can sync
            anti_entropy_every=1000,
        )
        coordinator = Coordinator(cluster, anti_entropy_every=4)
        # The manager's own modulo trigger is disabled; the sweep now
        # fires on loop time with its own period.
        assert cluster.replication_manager.anti_entropy_every is None
        assert "anti-entropy" in [
            t.name for t in coordinator.loop.tasks()
        ]
        element = EncryptedPostingElement(b"ct", group="g", trs=0.5)
        cluster.insert("u", 0, element)
        follower = cluster.replicas_of(0)[1]
        assert cluster.applied_version(0, follower) == 0
        coordinator.loop.advance(4)  # sweep fires at tick 3
        assert cluster.applied_version(0, follower) == 1
        assert cluster.replication_stats.anti_entropy_runs >= 1

    def test_replication_delivery_rides_virtual_time(self, keys):
        from repro.core.protocol import EncryptedPostingElement

        cluster = ServerCluster(
            keys, num_lists=1, num_servers=2, replication=2, lag=3
        )
        coordinator = Coordinator(cluster)
        element = EncryptedPostingElement(b"ct", group="g", trs=0.5)
        cluster.insert("u", 0, element)
        follower = cluster.replicas_of(0)[1]
        coordinator.loop.advance(2)
        assert cluster.applied_version(0, follower) == 0
        coordinator.loop.advance(2)  # lag elapsed on the virtual clock
        assert cluster.applied_version(0, follower) == 1


class TestLockstepEquivalence:
    """The acceptance bar: at zero round latency the event-driven path is
    byte-identical to the lockstep driver — same results, same stats,
    same replication cadence."""

    def _run_lockstep(self, system, queries):
        cluster, coordinator = system.deploy_cluster(num_servers=3)
        client = system.client_for("superuser", server=cluster)
        results = coordinator.run_queries([(client, q, 4) for q in queries])
        return cluster, coordinator, results

    def _run_event_driven(self, system, queries):
        cluster, coordinator = system.deploy_cluster(num_servers=3)
        client = system.client_for("superuser", server=cluster)
        sessions = [client.open_multi_session(q, 4) for q in queries]
        for session in sessions:
            coordinator.submit_arrival(session, at=0)
        coordinator.drain()
        return cluster, coordinator, [s.result() for s in sessions]

    def test_event_driven_equals_lockstep_at_zero_latency(self, system):
        queries = _queries(system, 6)
        l_cluster, l_coord, l_results = self._run_lockstep(system, queries)
        e_cluster, e_coord, e_results = self._run_event_driven(
            system, queries
        )
        for lr, er in zip(l_results, e_results):
            assert er.ranked == lr.ranked
            assert [t.elements_transferred for t in er.traces] == [
                t.elements_transferred for t in lr.traces
            ]
        # The whole stats dataclass, not a field subset: any scheduling
        # divergence (extra flush, missed dedup, spurious spill) shows up.
        assert e_coord.stats == l_coord.stats
        assert (
            e_cluster.replication_manager.tick_count
            == l_cluster.replication_manager.tick_count
        )
        assert e_cluster.total_calls == l_cluster.total_calls

    def test_tick_driver_advances_exactly_one_tick(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=2)
        client = system.client_for("superuser", server=cluster)
        coordinator.submit(
            client.open_multi_session(_queries(system, 1)[0], 4)
        )
        before = coordinator.loop.now
        assert coordinator.tick() is True
        assert coordinator.loop.now == before + 1
        assert cluster.replication_manager.tick_count == before + 1

    def test_idle_tick_does_not_advance_time(self, system):
        cluster, coordinator = system.deploy_cluster(num_servers=2)
        assert coordinator.tick() is False
        assert coordinator.loop.now == 0
        assert cluster.replication_manager.tick_count == 0
