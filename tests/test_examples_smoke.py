"""Smoke tests: every shipped example must run end-to-end.

Each example is executed in-process (importing its ``main``) so failures
surface as ordinary test failures with tracebacks, and the suite keeps the
documentation honest — an API change that breaks an example breaks CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


# mobile_topk and attack_analysis are exercised by the benchmark suite's
# heavier machinery; the remaining examples each run once below (an example
# that both runs and has its key claim asserted is covered by one test).


def test_sigma_tuning_runs(capsys):
    _load_example("sigma_tuning").main()
    out = capsys.readouterr().out
    assert "cross-validated optimum" in out


def test_quickstart_reports_equivalence(capsys):
    _load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "matches ordinary inverted index ranking: True" in out


def test_enterprise_sharing_enforces_acl(capsys):
    _load_example("enterprise_sharing").main()
    out = capsys.readouterr().out
    assert "not a member of group 'gamma'" in out
    assert "(none — no readable documents)" in out


def test_persistent_index_roundtrip_confirmed(capsys):
    _load_example("persistent_index").main()
    out = capsys.readouterr().out
    assert "matches the original deployment: True" in out
