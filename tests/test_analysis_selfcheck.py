"""The repo must satisfy its own gates: zlint clean, exports resolvable."""

import importlib
from pathlib import Path

import pytest

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

AUDITED_PACKAGES = [
    "repro",
    "repro.core",
    "repro.crypto",
    "repro.persist",
    "repro.analysis",
]


def test_zlint_runs_clean_on_own_source():
    findings, files_checked = analyze_paths([SRC])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"zlint findings on src/:\n{rendered}"
    assert files_checked > 50  # the walk actually saw the tree


@pytest.mark.parametrize("package", AUDITED_PACKAGES)
def test_dunder_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must declare __all__"
    assert sorted(set(exported)) == sorted(exported), f"{package}: duplicate exports"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists unresolvable {name!r}"


def test_mypy_strict_packages():
    """Strict typing gate; skipped where mypy is not installed (CI runs it)."""
    pytest.importorskip("mypy")
    from mypy import api as mypy_api

    stdout, stderr, status = mypy_api.run(
        [
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            "-p",
            "repro.core",
            "-p",
            "repro.crypto",
            "-p",
            "repro.persist",
            "-p",
            "repro.analysis",
        ]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
