"""Stats-amnesia fix: per-list fetch heat survives a cluster restart.

The placement daemon steers by ``list_heat`` / ``per_server_load``;
before PR 9 a restart zeroed both, so a freshly restored cluster made
cold placement decisions until the heat re-accumulated.  The snapshot
now carries an optional per-server ``"heat"`` section (a v2 extension:
old dumps without it still load, they just come back cold).
"""

from __future__ import annotations

import pytest

from repro.core.cluster import ServerCluster
from repro.core.protocol import FetchRequest
from repro.crypto.keys import GroupKeyService
from repro.errors import ConfigurationError, ProtocolError, UnknownListError
from repro.index.postings import EncryptedPostingElement
from repro.persist import cluster_from_dict, cluster_to_dict, load_cluster, save_cluster


def _keys():
    svc = GroupKeyService(master_secret=b"f" * 32)
    svc.register("u", {"g"})
    return svc


def _save(cluster, path):
    from repro.core.rstf import RstfModel
    from repro.index.merge import MergePlan

    plan = MergePlan(groups=tuple((f"t{i}",) for i in range(3)), r=2.0)
    save_cluster(path, cluster, plan, RstfModel({}))


def _load(path):
    restored, _, _ = load_cluster(path, _keys())
    return restored


def _warm_cluster():
    cluster = ServerCluster(_keys(), num_lists=3, num_servers=2, replication=2)
    for i in range(4):
        cluster.insert(
            "u",
            i % 3,
            EncryptedPostingElement(
                ciphertext=b"el-%d" % i, group="g", trs=(i + 1) / 10.0
            ),
        )
    for _ in range(5):
        cluster.fetch(FetchRequest(principal="u", list_id=0, offset=0, count=2))
    cluster.fetch(FetchRequest(principal="u", list_id=1, offset=0, count=2))
    return cluster


class TestHeatRoundTrip:
    def test_fetch_heat_survives_restart(self, tmp_path):
        cluster = _warm_cluster()
        path = tmp_path / "snap.json"
        _save(cluster, path)
        restored = _load(path)
        assert restored.list_heat() == cluster.list_heat()
        assert restored.per_server_load() == cluster.per_server_load()

    def test_heat_keeps_accumulating_after_restore(self, tmp_path):
        cluster = _warm_cluster()
        path = tmp_path / "snap.json"
        _save(cluster, path)
        restored = _load(path)
        before = restored.list_heat()[0]
        restored.fetch(FetchRequest(principal="u", list_id=0, offset=0, count=1))
        assert restored.list_heat()[0] == before + 1

    def test_old_dump_without_heat_restores_cold(self):
        cluster = _warm_cluster()
        data = cluster_to_dict(cluster)
        for server_data in data["servers"]:
            server_data.pop("heat")
        restored = cluster_from_dict(data, _keys())
        assert all(heat == 0 for heat in restored.list_heat().values())
        assert all(load == 0 for load in restored.per_server_load())

    def test_heat_section_shape_is_stable(self):
        data = cluster_to_dict(_warm_cluster())
        for server_data in data["servers"]:
            heat = server_data["heat"]
            assert set(heat) == {"fetch_counts", "calls"}
            assert all(isinstance(k, str) for k in heat["fetch_counts"])


class TestHeatValidation:
    def test_negative_calls_rejected(self):
        data = cluster_to_dict(_warm_cluster())
        data["servers"][0]["heat"]["calls"] = -1
        with pytest.raises(ConfigurationError):
            cluster_from_dict(data, _keys())

    def test_negative_count_rejected(self):
        data = cluster_to_dict(_warm_cluster())
        data["servers"][0]["heat"]["fetch_counts"] = {"0": -2}
        with pytest.raises(ConfigurationError):
            cluster_from_dict(data, _keys())

    def test_unknown_list_id_rejected(self):
        data = cluster_to_dict(_warm_cluster())
        data["servers"][0]["heat"]["fetch_counts"] = {"99": 1}
        with pytest.raises(ConfigurationError):
            cluster_from_dict(data, _keys())

    def test_non_numeric_count_rejected(self):
        data = cluster_to_dict(_warm_cluster())
        data["servers"][0]["heat"]["fetch_counts"] = {"0": "many"}
        with pytest.raises(ConfigurationError):
            cluster_from_dict(data, _keys())

    def test_restore_heat_validates_directly(self):
        cluster = _warm_cluster()
        server = cluster.server(0)
        with pytest.raises(ProtocolError):
            server.restore_heat({0: 1}, calls=-1)
        with pytest.raises(ProtocolError):
            server.restore_heat({0: -1}, calls=0)
        with pytest.raises(UnknownListError):
            server.restore_heat({99: 1}, calls=1)
