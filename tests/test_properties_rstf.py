"""Property-based tests (hypothesis) for the RSTF invariants of §4.2.

The three required properties of a relevance score transformation function:
common range, uniform distribution, order preservation — the first and
third must hold for *every* input, which is exactly what property testing
checks.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.rstf import Rstf
from repro.core.sigma import heuristic_sigma

scores_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)

sigma_strategy = st.floats(min_value=0.5, max_value=1e4)

kind_strategy = st.sampled_from(["logistic", "erf"])


@given(mus=scores_strategy, sigma=sigma_strategy, kind=kind_strategy)
@settings(max_examples=150, deadline=None)
def test_output_always_in_unit_range(mus, sigma, kind):
    rstf = Rstf.from_scores(mus, sigma=sigma, kind=kind)
    x = np.linspace(-0.5, 1.5, 41)
    values = rstf.transform(x)
    assert np.all(values >= 0.0)
    assert np.all(values <= 1.0)


@given(mus=scores_strategy, sigma=sigma_strategy, kind=kind_strategy)
@settings(max_examples=150, deadline=None)
def test_order_preservation(mus, sigma, kind):
    """Property 3: x1 < x2 => RSTF(x1) <= RSTF(x2) (monotone)."""
    rstf = Rstf.from_scores(mus, sigma=sigma, kind=kind)
    x = np.sort(np.linspace(0.0, 1.0, 31))
    values = rstf.transform(x)
    assert np.all(np.diff(values) >= -1e-12)


@given(
    mus=scores_strategy,
    sigma=sigma_strategy,
    kind=kind_strategy,
    x1=st.floats(min_value=0.0, max_value=1.0),
    x2=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=150, deadline=None)
def test_pairwise_order_preservation(mus, sigma, kind, x1, x2):
    rstf = Rstf.from_scores(mus, sigma=sigma, kind=kind)
    t1, t2 = rstf.transform(x1), rstf.transform(x2)
    if x1 < x2:
        assert t1 <= t2 + 1e-12
    elif x1 > x2:
        assert t2 <= t1 + 1e-12
    else:
        assert t1 == t2


@given(mus=scores_strategy)
@settings(max_examples=100, deadline=None)
def test_heuristic_sigma_always_positive_and_finite(mus):
    sigma = heuristic_sigma(mus)
    assert sigma > 0
    assert np.isfinite(sigma)
    # The resulting RSTF must be constructible.
    Rstf.from_scores(mus, sigma=sigma)


@given(
    mus=st.lists(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=30,
        unique=True,
    )
)
@settings(max_examples=100, deadline=None)
def test_training_scores_map_into_interior(mus):
    """Training points never map to exactly 0 or 1 under the logistic form
    (each bell contributes 1/2 at its own centre)."""
    sigma = heuristic_sigma(mus)
    rstf = Rstf.from_scores(mus, sigma=sigma, kind="logistic")
    values = rstf.transform(np.asarray(sorted(mus)))
    assert np.all(values > 0.0)
    assert np.all(values < 1.0)


@given(mus=scores_strategy, sigma=sigma_strategy)
@settings(max_examples=100, deadline=None)
def test_transform_deterministic(mus, sigma):
    rstf = Rstf.from_scores(mus, sigma=sigma)
    assert rstf.transform(0.37) == rstf.transform(0.37)
