"""Unit tests for the response policy, query traces (Eq. 12–14), and the
batched fetch protocol messages."""

import pytest

from repro.core.protocol import (
    BatchFetchRequest,
    BatchFetchResponse,
    BatchQueryTrace,
    FetchRequest,
    FetchResponse,
    QueryTrace,
    ResponsePolicy,
)
from repro.errors import ProtocolError
from repro.index.postings import EncryptedPostingElement


def _element(trs=0.5):
    return EncryptedPostingElement(ciphertext=b"12345678", group="g", trs=trs)


class TestResponsePolicy:
    def test_doubling_sizes(self):
        policy = ResponsePolicy(initial_size=10)
        assert [policy.response_size(i) for i in range(4)] == [10, 20, 40, 80]

    def test_total_after_matches_eq12(self):
        # Eq. 12: TRes = b * sum_{i=0..n} 2^i
        policy = ResponsePolicy(initial_size=10)
        assert policy.total_after(3) == 10 * (1 + 2 + 4)
        assert policy.total_after(1) == 10
        assert policy.total_after(0) == 0

    def test_growth_factor_one(self):
        policy = ResponsePolicy(initial_size=5, growth_factor=1)
        assert policy.total_after(4) == 20

    def test_validation(self):
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=0)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1, growth_factor=0)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1).response_size(-1)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1).total_after(-1)


class TestFetchMessages:
    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            FetchRequest(principal="p", list_id=0, offset=-1, count=1)
        with pytest.raises(ProtocolError):
            FetchRequest(principal="p", list_id=0, offset=0, count=0)

    def test_response_len(self):
        response = FetchResponse(elements=(_element(), _element()), exhausted=False)
        assert len(response) == 2


class TestQueryTrace:
    def test_record_response_accumulates(self):
        trace = QueryTrace(term="t", k=10)
        trace.record_response(FetchResponse(elements=(_element(),) * 10, exhausted=False))
        trace.record_response(FetchResponse(elements=(_element(),) * 20, exhausted=True))
        assert trace.num_requests == 2
        assert trace.elements_transferred == 30
        assert trace.bits_transferred == 30 * (8 * 8 + 64)

    def test_bandwidth_overhead_eq13_contribution(self):
        trace = QueryTrace(term="t", k=10, elements_transferred=30)
        assert trace.bandwidth_overhead() == pytest.approx(3.0)

    def test_query_efficiency_eq14(self):
        trace = QueryTrace(term="t", k=10, elements_transferred=40)
        assert trace.query_efficiency() == pytest.approx(0.25)

    def test_efficiency_without_responses_rejected(self):
        with pytest.raises(ProtocolError):
            QueryTrace(term="t", k=10).query_efficiency()

    def test_overhead_requires_positive_k(self):
        trace = QueryTrace(term="t", k=0, elements_transferred=5)
        with pytest.raises(ProtocolError):
            trace.bandwidth_overhead()


class TestBatchFetchMessages:
    def _request(self, principal="p", list_id=0, offset=0, count=1):
        return FetchRequest(
            principal=principal, list_id=list_id, offset=offset, count=count
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError):
            BatchFetchRequest(principal="p", requests=())

    def test_foreign_principal_rejected(self):
        with pytest.raises(ProtocolError):
            BatchFetchRequest(
                principal="p",
                requests=(self._request(), self._request(principal="q")),
            )

    def test_for_slices_builder(self):
        batch = BatchFetchRequest.for_slices("p", [(0, 0, 5), (3, 10, 2)])
        assert len(batch) == 2
        assert batch.requests[1] == self._request(
            principal="p", list_id=3, offset=10, count=2
        )

    def test_slice_validation_still_applies(self):
        with pytest.raises(ProtocolError):
            BatchFetchRequest.for_slices("p", [(0, -1, 5)])

    def test_response_accounting(self):
        response = BatchFetchResponse(
            responses=(
                FetchResponse(elements=(_element(),) * 2, exhausted=False),
                FetchResponse(elements=(), exhausted=True),
            )
        )
        assert len(response) == 2
        assert response.elements_returned == 2
        assert [r.exhausted for r in response] == [False, True]


class TestBatchQueryTrace:
    def _round(self, slice_sizes):
        return BatchFetchResponse(
            responses=tuple(
                FetchResponse(elements=(_element(),) * n, exhausted=False)
                for n in slice_sizes
            )
        )

    def test_record_round_accumulates(self):
        trace = BatchQueryTrace(terms=("a", "b"), k=10)
        trace.record_round(self._round([10, 10]))
        trace.record_round(self._round([20]))
        assert trace.num_rounds == 2
        assert trace.num_subfetches == 3
        assert trace.elements_transferred == 40
        assert trace.bits_transferred == 40 * (8 * 8 + 64)

    def test_num_requests_counts_server_calls(self):
        trace = BatchQueryTrace(terms=("a", "b", "c"), k=5)
        trace.record_round(self._round([5, 5, 5]))
        trace.record_round(self._round([10, 10]))
        assert trace.num_requests == 2
        assert trace.requests_saved() == 3
