"""Unit tests for the response policy and query traces (Eq. 12–14)."""

import pytest

from repro.core.protocol import (
    FetchRequest,
    FetchResponse,
    QueryTrace,
    ResponsePolicy,
)
from repro.errors import ProtocolError
from repro.index.postings import EncryptedPostingElement


def _element(trs=0.5):
    return EncryptedPostingElement(ciphertext=b"12345678", group="g", trs=trs)


class TestResponsePolicy:
    def test_doubling_sizes(self):
        policy = ResponsePolicy(initial_size=10)
        assert [policy.response_size(i) for i in range(4)] == [10, 20, 40, 80]

    def test_total_after_matches_eq12(self):
        # Eq. 12: TRes = b * sum_{i=0..n} 2^i
        policy = ResponsePolicy(initial_size=10)
        assert policy.total_after(3) == 10 * (1 + 2 + 4)
        assert policy.total_after(1) == 10
        assert policy.total_after(0) == 0

    def test_growth_factor_one(self):
        policy = ResponsePolicy(initial_size=5, growth_factor=1)
        assert policy.total_after(4) == 20

    def test_validation(self):
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=0)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1, growth_factor=0)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1).response_size(-1)
        with pytest.raises(ProtocolError):
            ResponsePolicy(initial_size=1).total_after(-1)


class TestFetchMessages:
    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            FetchRequest(principal="p", list_id=0, offset=-1, count=1)
        with pytest.raises(ProtocolError):
            FetchRequest(principal="p", list_id=0, offset=0, count=0)

    def test_response_len(self):
        response = FetchResponse(elements=(_element(), _element()), exhausted=False)
        assert len(response) == 2


class TestQueryTrace:
    def test_record_response_accumulates(self):
        trace = QueryTrace(term="t", k=10)
        trace.record_response(FetchResponse(elements=(_element(),) * 10, exhausted=False))
        trace.record_response(FetchResponse(elements=(_element(),) * 20, exhausted=True))
        assert trace.num_requests == 2
        assert trace.elements_transferred == 30
        assert trace.bits_transferred == 30 * (8 * 8 + 64)

    def test_bandwidth_overhead_eq13_contribution(self):
        trace = QueryTrace(term="t", k=10, elements_transferred=30)
        assert trace.bandwidth_overhead() == pytest.approx(3.0)

    def test_query_efficiency_eq14(self):
        trace = QueryTrace(term="t", k=10, elements_transferred=40)
        assert trace.query_efficiency() == pytest.approx(0.25)

    def test_efficiency_without_responses_rejected(self):
        with pytest.raises(ProtocolError):
            QueryTrace(term="t", k=10).query_efficiency()

    def test_overhead_requires_positive_k(self):
        trace = QueryTrace(term="t", k=0, elements_transferred=5)
        with pytest.raises(ProtocolError):
            trace.bandwidth_overhead()
