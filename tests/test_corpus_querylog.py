"""Tests for the synthetic query workload (Fig. 10 preconditions)."""

import pytest

from repro.corpus.querylog import (
    Query,
    QueryLog,
    QueryLogConfig,
    QueryLogGenerator,
    single_term_log,
)
from repro.text.analysis import DocumentStats
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def vocabulary(corpus):
    return Vocabulary.from_documents(corpus.all_stats())


@pytest.fixture(scope="module")
def log(vocabulary):
    config = QueryLogConfig(num_queries=3000, seed=3)
    return QueryLogGenerator(vocabulary, config).generate()


class TestQuery:
    def test_valid(self):
        assert len(Query(terms=("a", "b"))) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Query(terms=())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Query(terms=("a", "a"))


class TestQueryLog:
    def test_total_and_distinct(self):
        log = QueryLog({Query(terms=("a",)): 3, Query(terms=("a", "b")): 2})
        assert log.total_queries == 5
        assert log.distinct_queries == 2

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            QueryLog({Query(terms=("a",)): 0})

    def test_term_frequencies_flatten_multiterm(self):
        log = QueryLog({Query(terms=("a",)): 3, Query(terms=("a", "b")): 2})
        freqs = log.term_frequencies()
        assert freqs["a"] == 5
        assert freqs["b"] == 2

    def test_mean_terms_per_query(self):
        log = QueryLog({Query(terms=("a",)): 1, Query(terms=("a", "b", "c")): 1})
        assert log.mean_terms_per_query() == pytest.approx(2.0)

    def test_iteration_with_multiplicity(self):
        log = QueryLog({Query(terms=("a",)): 2})
        assert len(list(log)) == 2

    def test_head_share_monotone(self):
        log = QueryLog(
            {
                Query(terms=("a",)): 100,
                Query(terms=("b",)): 10,
                Query(terms=("c",)): 1,
            }
        )
        assert log.head_share(0.34) > 0.8
        assert log.head_share(1.0) == pytest.approx(1.0)

    def test_single_term_log_helper(self):
        log = single_term_log({"x": 5, "y": 1})
        assert log.term_frequencies() == {"x": 5, "y": 1}


class TestGenerator:
    def test_total_queries(self, log):
        assert log.total_queries == 3000

    def test_mean_length_bounded(self, log):
        # Dedup of i.i.d. draws shortens queries; on the tiny test
        # vocabulary (a few hundred terms) head terms collide often, so
        # only sanity bounds hold here — the realistic-vocabulary check is
        # test_mean_length_near_target_realistic_vocabulary.
        assert 1.0 < log.mean_terms_per_query() <= 2.4

    def test_mean_length_near_target_realistic_vocabulary(self):
        from repro.corpus.synthetic import studip_like

        corpus = studip_like(num_documents=200, vocabulary_size=4000, seed=19)
        vocabulary = Vocabulary.from_documents(corpus.all_stats())
        log = QueryLogGenerator(
            vocabulary, QueryLogConfig(num_queries=5000, seed=23)
        ).generate()
        assert log.mean_terms_per_query() == pytest.approx(2.4, abs=0.3)

    def test_query_terms_come_from_vocabulary(self, log, vocabulary):
        assert log.distinct_terms() <= set(iter(vocabulary))

    def test_head_dominates_workload(self, log):
        # The paper's Fig. 10 precondition: the most frequent few percent of
        # terms carry most of the workload.
        assert log.head_share(0.10) > 0.5

    def test_query_frequency_correlates_with_df(self, log, vocabulary):
        freqs = log.term_frequencies()
        queried = [t for t, c in freqs.items() if c > 0]
        # Spearman-lite: df of the top-queried decile vs. the bottom decile.
        ranked = sorted(queried, key=lambda t: -freqs[t])
        n = max(len(ranked) // 10, 1)
        top_df = sum(vocabulary.document_frequency(t) for t in ranked[:n]) / n
        bottom_df = sum(vocabulary.document_frequency(t) for t in ranked[-n:]) / n
        assert top_df > bottom_df

    def test_deterministic(self, vocabulary):
        config = QueryLogConfig(num_queries=200, seed=11)
        a = QueryLogGenerator(vocabulary, config).generate()
        b = QueryLogGenerator(vocabulary, config).generate()
        assert dict(a.items()) == dict(b.items())

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            QueryLogGenerator(Vocabulary())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QueryLogConfig(num_queries=0)
        with pytest.raises(ValueError):
            QueryLogConfig(mean_terms_per_query=0.5)
        with pytest.raises(ValueError):
            QueryLogConfig(demotion_factor=0.0)
