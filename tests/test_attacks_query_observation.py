"""Tests for the query-observation attack and the BFM defence (§6.2)."""

import pytest

from repro.attacks.query_observation import (
    QueryObservationAttack,
    QuerySession,
    chance_identification_rate,
    extract_sessions,
)
from repro.core.protocol import ResponsePolicy
from repro.core.server import ObservedFetch


def _fetch(principal, list_id, offset, count, returned=None):
    return ObservedFetch(
        principal=principal,
        list_id=list_id,
        offset=offset,
        count=count,
        returned=count if returned is None else returned,
    )


class TestSessionExtraction:
    def test_single_session(self):
        sessions = extract_sessions(
            [_fetch("u", 0, 0, 10), _fetch("u", 0, 10, 20)]
        )
        assert len(sessions) == 1
        assert sessions[0].num_requests == 2
        assert sessions[0].total_elements == 30

    def test_new_offset_zero_starts_new_session(self):
        sessions = extract_sessions(
            [_fetch("u", 0, 0, 10), _fetch("u", 0, 0, 10)]
        )
        assert len(sessions) == 2

    def test_interleaved_principals_separated(self):
        sessions = extract_sessions(
            [
                _fetch("u", 0, 0, 10),
                _fetch("v", 0, 0, 10),
                _fetch("u", 0, 10, 20),
            ]
        )
        by_principal = {s.principal: s for s in sessions}
        assert by_principal["u"].num_requests == 2
        assert by_principal["v"].num_requests == 1

    def test_different_lists_separated(self):
        sessions = extract_sessions(
            [_fetch("u", 0, 0, 10), _fetch("u", 1, 0, 10)]
        )
        assert len(sessions) == 2

    def test_empty_stream(self):
        assert extract_sessions([]) == []


class TestExpectations:
    DFS = {"freq": 100, "mid": 50, "rare": 2}

    def test_expected_first_position_eq10(self):
        attack = QueryObservationAttack(self.DFS)
        # pos1(rare) = (100+50+2)/2 = 76
        assert attack.expected_first_position(
            "rare", ["freq", "mid", "rare"]
        ) == pytest.approx(76.0)

    def test_expected_elements_eq11(self):
        attack = QueryObservationAttack(self.DFS)
        assert attack.expected_elements_needed(
            "freq", ["freq", "mid", "rare"], k=10
        ) == pytest.approx(15.2)

    def test_expected_requests_doubling(self):
        attack = QueryObservationAttack(self.DFS)
        policy = ResponsePolicy(initial_size=10)
        # freq needs 15.2 elements -> 10 then 20 => 2 requests.
        assert attack.expected_requests("freq", ["freq", "mid", "rare"], 10, policy) == 2
        # rare needs 760 -> 10+20+40+80+160+320+640=1270 ... 7 requests.
        assert attack.expected_requests("rare", ["freq", "mid", "rare"], 10, policy) == 7

    def test_zero_df_rejected(self):
        attack = QueryObservationAttack({"t": 0})
        with pytest.raises(ValueError):
            attack.expected_first_position("t", ["t"])

    def test_invalid_k(self):
        attack = QueryObservationAttack(self.DFS)
        with pytest.raises(ValueError):
            attack.expected_elements_needed("freq", ["freq"], 0)


class TestLeakage:
    def test_equal_frequencies_no_leak(self):
        attack = QueryObservationAttack({"a": 50, "b": 50, "c": 50})
        policy = ResponsePolicy(initial_size=10)
        assert attack.list_leakage(["a", "b", "c"], 10, policy) == 0

    def test_similar_frequencies_small_leak(self):
        # Near-equal dfs can still straddle a doubling boundary; the leak
        # is at most one request class (the BFM guarantee is "similar", and
        # the doubling granularity absorbs most of the residual).
        attack = QueryObservationAttack({"a": 50, "b": 48, "c": 52})
        policy = ResponsePolicy(initial_size=10)
        assert attack.list_leakage(["a", "b", "c"], 10, policy) <= 1

    def test_mixed_frequencies_leak(self):
        attack = QueryObservationAttack({"freq": 100, "rare": 2})
        policy = ResponsePolicy(initial_size=10)
        assert attack.list_leakage(["freq", "rare"], 10, policy) > 0

    def test_identify_from_session(self):
        attack = QueryObservationAttack({"freq": 100, "rare": 2})
        policy = ResponsePolicy(initial_size=10)
        n_rare = attack.expected_requests("freq", ["freq", "rare"], 10, policy)
        session = QuerySession(
            principal="u", list_id=0, num_requests=n_rare, total_elements=0
        )
        consistent = attack.identify_from_session(
            session, ["freq", "rare"], 10, policy
        )
        assert consistent == ["freq"]

    def test_identification_rate_bfm_like(self):
        # Same-frequency list: observing counts gives 1/len(list).
        attack = QueryObservationAttack({"a": 50, "b": 50})
        policy = ResponsePolicy(initial_size=10)
        n = attack.expected_requests("a", ["a", "b"], 10, policy)
        sessions = [
            (QuerySession("u", 0, n, 0), "a"),
            (QuerySession("u", 0, n, 0), "b"),
        ]
        rate = attack.session_identification_rate(
            sessions, {0: ["a", "b"]}, 10, policy
        )
        assert rate == pytest.approx(0.5)

    def test_identification_rate_mixed_list_higher(self):
        attack = QueryObservationAttack({"freq": 100, "rare": 2})
        policy = ResponsePolicy(initial_size=10)
        n_f = attack.expected_requests("freq", ["freq", "rare"], 10, policy)
        n_r = attack.expected_requests("rare", ["freq", "rare"], 10, policy)
        assert n_f != n_r
        sessions = [
            (QuerySession("u", 0, n_f, 0), "freq"),
            (QuerySession("u", 0, n_r, 0), "rare"),
        ]
        rate = attack.session_identification_rate(
            sessions, {0: ["freq", "rare"]}, 10, policy
        )
        assert rate == pytest.approx(1.0)

    def test_chance_rate(self):
        assert chance_identification_rate({0: ["a", "b"], 1: ["c"]}) == pytest.approx(
            0.75
        )

    def test_empty_inputs_rejected(self):
        attack = QueryObservationAttack({"a": 1})
        with pytest.raises(ValueError):
            attack.session_identification_rate([], {}, 10, ResponsePolicy(1))
        with pytest.raises(ValueError):
            chance_identification_rate({})
