"""Fuzz the ordstat-backed readable views against a list-backed reference.

The reference behaviour is the straight filter the seed used: the
principal-readable sub-list of a merged list is ``[e for e in elements if
e.group in memberships]`` in list order, sliced by ``(offset, count)``.
Random insert/delete/revoke/enroll/bulk sequences must keep the
incrementally-patched skip-list views byte-identical to that filter.
"""

import random

import pytest

from repro.core.views import ReadableViewIndex
from repro.crypto.keys import GroupKeyService
from repro.index.postings import EncryptedPostingElement, MergedPostingList

GROUPS = ["g0", "g1", "g2"]
PRINCIPALS = ["alice", "bob", "carol"]


def reference_readable(merged, memberships):
    return [e for e in merged.elements if e.group in memberships]


@pytest.mark.parametrize("seed", range(6))
def test_views_match_list_backed_reference(seed):
    rng = random.Random(seed)
    keys = GroupKeyService(master_secret=b"views-fuzz-secret-0123456789abcd")
    for group in GROUPS:
        keys.ensure_group(group)
    memberships = {
        "alice": {"g0", "g1"},
        "bob": {"g1", "g2"},
        "carol": set(GROUPS),
    }
    for name, groups in memberships.items():
        keys.register(name, set(groups))

    views = ReadableViewIndex(keys, capacity=8)
    merged = MergedPostingList(list_id=0)
    live: list[EncryptedPostingElement] = []
    counter = 0

    def check(principal):
        expected = reference_readable(
            merged, keys.membership_snapshot(principal)
        )
        offset = rng.randrange(0, len(expected) + 2)
        count = rng.randrange(0, 6)
        got_slice, got_length = views.slice(merged, principal, offset, count)
        assert got_length == len(expected)
        assert got_slice == expected[offset : offset + count]
        assert views.get(merged, principal) == expected

    for op in range(500):
        roll = rng.random()
        if roll < 0.45 or not live:
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"ct-%d" % counter,
                group=rng.choice(GROUPS),
                # Deliberately collision-heavy TRS values to exercise the
                # equal-key paths of insert and delete patches.
                trs=rng.randrange(20) / 19.0,
            )
            merged.add_sorted_by_trs(element)
            views.note_insert(merged, element)
            live.append(element)
        elif roll < 0.7:
            element = live.pop(rng.randrange(len(live)))
            removed = merged.remove_by_ciphertext(element.ciphertext)
            assert removed is element
            views.note_delete(merged, element)
        elif roll < 0.8:
            principal = rng.choice(PRINCIPALS)
            group = rng.choice(GROUPS)
            if group in keys.membership_snapshot(principal):
                keys.revoke(principal, group)
            else:
                keys.enroll(principal, group)
        elif roll < 0.85:
            # Bulk load bypasses the per-element notifications entirely;
            # views must recover through invalidation + lazy rebuild.
            counter += 1
            extra = [
                EncryptedPostingElement(
                    ciphertext=b"bulk-%d-%d" % (counter, i),
                    group=rng.choice(GROUPS),
                    trs=rng.randrange(20) / 19.0,
                )
                for i in range(rng.randrange(1, 4))
            ]
            merged.bulk_load_sorted_by_trs(extra)
            views.invalidate_list(merged.list_id)
            live.extend(extra)
        check(rng.choice(PRINCIPALS))

    # The workload must actually have exercised the incremental path.
    assert views.stats.incremental_updates > 50
    assert merged.keys_in_sync()
