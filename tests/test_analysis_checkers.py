"""Per-rule checker tests driven by the fixture snippets.

Scoped rules (``determinism`` watches ``repro.core``,
``exception-discipline`` watches ``repro.persist``/``repro.cli``) are fed
their fixture sources under an explicit in-scope module name, since
fixture paths derive neutral bare-stem modules.
"""

from pathlib import Path

import pytest

from repro.analysis import all_checkers, analyze_source
from repro.analysis.checkers.consistency import (
    READ_CONSISTENCY_MEMBERS,
    WRITE_CONSISTENCY_MEMBERS,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"

# rule id -> (fixture stem base, module the fixture is linted as)
RULE_FIXTURES = {
    "crypto-construct": ("crypto_construct", None),
    "crypto-key-leak": ("crypto_key_leak", None),
    "replication-bypass": ("replication_bypass", None),
    "epoch-discipline": ("epoch_discipline", None),
    "determinism": ("determinism", "repro.core.fixture_mod"),
    "eventloop-discipline": ("eventloop_discipline", "repro.core.fixture_mod"),
    "exception-discipline": ("exception_discipline", "repro.persist.fixture_mod"),
    "consistency-exhaustiveness": ("consistency", None),
    "export-sanity": ("export_sanity", None),
    "obs-discipline": ("obs_discipline", "repro.core.fixture_mod"),
}


def _lint(stem: str, module: str | None):
    path = FIXTURES / f"{stem}.py"
    return analyze_source(
        path.read_text(), module=module or stem, path=str(path)
    )


def test_every_registered_rule_has_a_fixture_pair():
    assert set(RULE_FIXTURES) == set(all_checkers())
    for base, _ in RULE_FIXTURES.values():
        assert (FIXTURES / f"{base}_bad.py").exists()
        assert (FIXTURES / f"{base}_good.py").exists()


def test_issue_floor_of_six_distinct_rules():
    assert len(all_checkers()) >= 6


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_bad_fixture_fires_only_its_rule(rule):
    base, module = RULE_FIXTURES[rule]
    findings = _lint(f"{base}_bad", module)
    assert findings, f"{rule}: bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_good_fixture_is_clean(rule):
    base, module = RULE_FIXTURES[rule]
    assert _lint(f"{base}_good", module) == []


def test_bad_fixtures_report_real_locations():
    for rule, (base, module) in sorted(RULE_FIXTURES.items()):
        path = FIXTURES / f"{base}_bad.py"
        lines = path.read_text().splitlines()
        for finding in _lint(f"{base}_bad", module):
            assert 1 <= finding.line <= len(lines), (rule, finding)
            assert finding.col >= 1


def test_read_consistency_mirror_matches_enum():
    """The checker's member mirror must track repro.core.replication."""
    from repro.core.replication import ReadConsistency

    assert READ_CONSISTENCY_MEMBERS == {member.name for member in ReadConsistency}


def test_write_consistency_mirror_matches_enum():
    """The write-side mirror must track repro.core.replication too."""
    from repro.core.replication import WriteConsistency

    assert WRITE_CONSISTENCY_MEMBERS == {member.name for member in WriteConsistency}
