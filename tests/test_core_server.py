"""Unit tests for the untrusted Zerber+R index server."""

import pytest

from repro.core.protocol import BatchFetchRequest, FetchRequest
from repro.core.server import ZerberRServer
from repro.crypto.keys import GroupKeyService
from repro.errors import AccessDeniedError, ProtocolError, UnknownListError
from repro.index.postings import EncryptedPostingElement


@pytest.fixture()
def keys():
    svc = GroupKeyService(master_secret=b"s" * 32)
    svc.register("alice", {"g1"})
    svc.register("bob", {"g2"})
    svc.register("root", {"g1", "g2"})
    return svc


@pytest.fixture()
def server(keys):
    return ZerberRServer(keys, num_lists=3)


def _element(group, trs):
    return EncryptedPostingElement(ciphertext=b"cipher", group=group, trs=trs)


class TestInsert:
    def test_member_insert_accepted(self, server):
        server.insert("alice", 0, _element("g1", 0.5))
        assert server.list_length(0) == 1

    def test_non_member_insert_denied(self, server):
        with pytest.raises(AccessDeniedError):
            server.insert("alice", 0, _element("g2", 0.5))

    def test_trs_required(self, server):
        with pytest.raises(ProtocolError):
            server.insert("alice", 0, EncryptedPostingElement(b"c", "g1"))

    def test_unknown_list(self, server):
        with pytest.raises(UnknownListError):
            server.insert("alice", 99, _element("g1", 0.5))

    def test_insert_keeps_trs_order(self, server):
        for trs in [0.2, 0.9, 0.5]:
            server.insert("alice", 0, _element("g1", trs))
        assert server.visible_trs_values(0) == [0.9, 0.5, 0.2]

    def test_bulk_load_matches_incremental(self, keys):
        incremental = ZerberRServer(keys, num_lists=1)
        bulk = ZerberRServer(keys, num_lists=1)
        elements = [_element("g1", t) for t in [0.3, 0.8, 0.1]]
        for e in elements:
            incremental.insert("alice", 0, e)
        bulk.bulk_load("alice", [(0, e) for e in elements])
        assert incremental.visible_trs_values(0) == bulk.visible_trs_values(0)

    def test_bulk_load_membership_checked(self, server):
        with pytest.raises(AccessDeniedError):
            server.bulk_load("alice", [(0, _element("g2", 0.5))])

    def test_num_elements(self, server):
        server.insert("alice", 0, _element("g1", 0.1))
        server.insert("bob", 1, _element("g2", 0.2))
        assert server.num_elements == 2


class TestFetch:
    def _populate(self, server):
        for i, trs in enumerate([0.9, 0.8, 0.7, 0.6, 0.5]):
            group = "g1" if i % 2 == 0 else "g2"
            principal = "alice" if group == "g1" else "bob"
            server.insert(principal, 0, _element(group, trs))

    def test_slice_and_exhaustion(self, server):
        self._populate(server)
        response = server.fetch(
            FetchRequest(principal="root", list_id=0, offset=0, count=3)
        )
        assert [e.trs for e in response.elements] == [0.9, 0.8, 0.7]
        assert not response.exhausted
        response2 = server.fetch(
            FetchRequest(principal="root", list_id=0, offset=3, count=3)
        )
        assert [e.trs for e in response2.elements] == [0.6, 0.5]
        assert response2.exhausted

    def test_access_control_filters_elements(self, server):
        self._populate(server)
        response = server.fetch(
            FetchRequest(principal="alice", list_id=0, offset=0, count=10)
        )
        assert [e.trs for e in response.elements] == [0.9, 0.7, 0.5]
        assert all(e.group == "g1" for e in response.elements)

    def test_offsets_count_within_readable_view(self, server):
        self._populate(server)
        response = server.fetch(
            FetchRequest(principal="alice", list_id=0, offset=1, count=1)
        )
        assert [e.trs for e in response.elements] == [0.7]

    def test_cache_invalidated_on_insert(self, server):
        self._populate(server)
        server.fetch(FetchRequest(principal="alice", list_id=0, offset=0, count=1))
        server.insert("alice", 0, _element("g1", 0.95))
        response = server.fetch(
            FetchRequest(principal="alice", list_id=0, offset=0, count=1)
        )
        assert response.elements[0].trs == 0.95

    def test_unknown_list(self, server):
        with pytest.raises(UnknownListError):
            server.fetch(FetchRequest(principal="root", list_id=9, offset=0, count=1))

    def test_observations_recorded(self, server):
        self._populate(server)
        server.fetch(FetchRequest(principal="root", list_id=0, offset=0, count=2))
        assert len(server.observations) == 1
        obs = server.observations[0]
        assert (obs.principal, obs.list_id, obs.offset, obs.count, obs.returned) == (
            "root",
            0,
            0,
            2,
            2,
        )

    def test_clear_observations(self, server):
        self._populate(server)
        server.fetch(FetchRequest(principal="root", list_id=0, offset=0, count=1))
        server.clear_observations()
        assert server.observations == []


class TestBatchFetch:
    def _populate(self, server):
        for i, trs in enumerate([0.9, 0.8, 0.7, 0.6, 0.5]):
            group = "g1" if i % 2 == 0 else "g2"
            principal = "alice" if group == "g1" else "bob"
            server.insert(
                principal,
                i % 2,
                EncryptedPostingElement(
                    ciphertext=b"c%d" % i, group=group, trs=trs
                ),
            )

    def test_batch_matches_singleton_fetches(self, server):
        self._populate(server)
        batch = BatchFetchRequest.for_slices("root", [(0, 0, 2), (1, 0, 2), (0, 2, 2)])
        batched = server.batch_fetch(batch)
        assert len(batched) == 3
        for request, response in zip(batch.requests, batched.responses):
            single = server.fetch(request)
            assert single.elements == response.elements
            assert single.exhausted == response.exhausted

    def test_batch_slices_share_batch_id(self, server):
        self._populate(server)
        server.clear_observations()
        server.batch_fetch(BatchFetchRequest.for_slices("root", [(0, 0, 1), (1, 0, 1)]))
        server.batch_fetch(BatchFetchRequest.for_slices("root", [(0, 1, 1)]))
        ids = [obs.batch_id for obs in server.observations]
        assert len(ids) == 3
        assert ids[0] == ids[1] is not None
        assert ids[2] not in (None, ids[0])

    def test_singleton_fetch_has_no_batch_id(self, server):
        self._populate(server)
        server.fetch(FetchRequest(principal="root", list_id=0, offset=0, count=1))
        assert server.observations[-1].batch_id is None

    def test_batch_access_control_per_slice(self, server):
        self._populate(server)
        batched = server.batch_fetch(
            BatchFetchRequest.for_slices("alice", [(0, 0, 10), (1, 0, 10)])
        )
        for response in batched:
            assert all(e.group == "g1" for e in response.elements)

    def test_batch_unknown_list(self, server):
        with pytest.raises(UnknownListError):
            server.batch_fetch(BatchFetchRequest.for_slices("root", [(9, 0, 1)]))


class TestReadableViews:
    def _populate(self, server):
        for i, trs in enumerate([0.9, 0.8, 0.7, 0.6, 0.5]):
            group = "g1" if i % 2 == 0 else "g2"
            principal = "alice" if group == "g1" else "bob"
            server.insert(
                principal,
                0,
                EncryptedPostingElement(
                    ciphertext=b"c%d" % i, group=group, trs=trs
                ),
            )

    def _fetch(self, server, principal, count=10):
        return server.fetch(
            FetchRequest(principal=principal, list_id=0, offset=0, count=count)
        )

    def test_insert_patches_view_without_rebuild(self, server):
        self._populate(server)
        self._fetch(server, "alice")  # warm the view
        builds = server.view_stats.full_builds
        for i in range(20):
            server.insert(
                "alice",
                0,
                EncryptedPostingElement(
                    ciphertext=b"new%d" % i, group="g1", trs=(i % 10) / 10.0
                ),
            )
            response = self._fetch(server, "alice", count=30)
            trs = [e.trs for e in response.elements]
            assert trs == sorted(trs, reverse=True)
        assert server.view_stats.full_builds == builds
        assert server.view_stats.incremental_updates >= 20

    def test_delete_patches_view_without_rebuild(self, server):
        self._populate(server)
        self._fetch(server, "alice")
        builds = server.view_stats.full_builds
        assert server.delete_element("alice", 0, b"c2")
        response = self._fetch(server, "alice")
        assert [e.trs for e in response.elements] == [0.9, 0.5]
        assert server.view_stats.full_builds == builds

    def test_unreadable_mutation_keeps_view_fresh(self, server):
        # A g2 insert must not invalidate alice's (g1-only) cached view.
        self._populate(server)
        self._fetch(server, "alice")
        builds = server.view_stats.full_builds
        server.insert(
            "bob",
            0,
            EncryptedPostingElement(ciphertext=b"bob-new", group="g2", trs=0.99),
        )
        response = self._fetch(server, "alice")
        assert all(e.group == "g1" for e in response.elements)
        assert server.view_stats.full_builds == builds

    def test_lru_eviction_bounds_cached_views(self, keys):
        server = ZerberRServer(keys, num_lists=1, readable_view_capacity=2)
        server.insert(
            "alice",
            0,
            EncryptedPostingElement(ciphertext=b"a", group="g1", trs=0.5),
        )
        for principal in ["alice", "bob", "root"]:
            server.fetch(
                FetchRequest(principal=principal, list_id=0, offset=0, count=1)
            )
        assert len(server._views) == 2
        assert server.view_stats.evictions == 1
        # The evicted (oldest) principal rebuilds on its next fetch.
        builds = server.view_stats.full_builds
        server.fetch(FetchRequest(principal="alice", list_id=0, offset=0, count=1))
        assert server.view_stats.full_builds == builds + 1

    def test_revocation_invalidates_cached_view(self, keys, server):
        # A cached view must not outlive a revocation: the next fetch
        # rebuilds under the new memberships and withholds g1 elements.
        self._populate(server)
        assert len(self._fetch(server, "alice").elements) == 3
        keys.revoke("alice", "g1")
        response = self._fetch(server, "alice")
        assert response.elements == ()
        assert server.view_stats.stale_rebuilds >= 1
        # Re-enrollment restores visibility on the very next fetch too.
        keys.enroll("alice", "g1")
        assert len(self._fetch(server, "alice").elements) == 3

    def test_external_mutation_falls_back_to_rebuild(self, server):
        # Direct list edits (no server notification) bump the version, so
        # the stale view is rebuilt, never served.
        self._populate(server)
        self._fetch(server, "alice")
        merged = server._lists[0]
        merged.elements.clear()
        merged._neg_trs_keys.clear()
        merged.version += 1
        response = self._fetch(server, "alice")
        assert response.elements == ()
        assert response.exhausted

    def test_bulk_load_invalidates_views(self, server):
        self._populate(server)
        self._fetch(server, "alice")
        server.bulk_load(
            "alice",
            [
                (
                    0,
                    EncryptedPostingElement(
                        ciphertext=b"bulk", group="g1", trs=0.95
                    ),
                )
            ],
        )
        response = self._fetch(server, "alice")
        assert response.elements[0].trs == 0.95
        assert server.view_stats.invalidations >= 1


class TestAdversaryView:
    def test_visible_group_tags(self, server):
        server.insert("alice", 1, _element("g1", 0.4))
        assert server.visible_group_tags(1) == ["g1"]

    def test_storage_accounting(self, server):
        server.insert("alice", 0, _element("g1", 0.4))
        assert server.storage_score_slots() == 1
        assert server.storage_bits() == len(b"cipher") * 8 + 64

    def test_invalid_num_lists(self, keys):
        with pytest.raises(ProtocolError):
            ZerberRServer(keys, num_lists=0)
