"""Fault injection for the replication subsystem.

Property tests that acknowledged writes are never lost and every replica
converges to a list-backed reference index, no matter how failures
(``fail_server``/``restore_server``), partitions (``pause_follower``),
replication lag, heat-driven rebalances and reads at every consistency
level interleave.  The reference is deliberately dumb: a python list per
merged list, mutated at the moment a write is *acknowledged* (the
cluster call returns) — exactly the contract replication must preserve.

Three interleaving regimes are covered:

* random op soup against the cluster surface (hypothesis-driven);
* fail/restore around migrations (mid-rebalance);
* fail/restore between coordinator scheduling ticks (mid-tick), where
  PRIMARY-consistency results must match a zero-lag reference cluster.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import SystemConfig, ZerberRSystem
from repro.core.cluster import ServerCluster
from repro.core.placement import HeatWeightedPlacement
from repro.core.protocol import FetchRequest
from repro.errors import UnavailableError
from repro.crypto.keys import GroupKeyService
from repro.index.postings import EncryptedPostingElement

NUM_LISTS = 3
NUM_SERVERS = 4
REPLICATION = 2

OPCODES = (
    "insert",
    "insert",
    "insert",  # writes weighted up: divergence needs material
    "delete",
    "tick",
    "tick",
    "fail",
    "restore",
    "pause",
    "resume",
    "fetch_one",
    "fetch_primary",
    "fetch_quorum",
    "rebalance",
)

# The failover soup adds quorum-acked writes and targeted primary kills
# (mid-write, mid-rebalance), so elections fire while the tape runs.
FAILOVER_OPCODES = OPCODES + (
    "insert_quorum",
    "insert_quorum",
    "kill_primary",
    "tick",
)


def _keys():
    svc = GroupKeyService(master_secret=b"f" * 32)
    svc.register("u", {"g"})
    return svc


class _Reference:
    """List-backed reference index: the acknowledged state of each list."""

    def __init__(self):
        self.lists: dict[int, list[EncryptedPostingElement]] = {
            lid: [] for lid in range(NUM_LISTS)
        }

    def insert(self, list_id, element):
        self.lists[list_id].append(element)

    def delete(self, list_id, ciphertext):
        self.lists[list_id] = [
            e for e in self.lists[list_id] if e.ciphertext != ciphertext
        ]

    def expected_order(self, list_id):
        """Server order: descending TRS (unique TRS values per element)."""
        return [
            e.ciphertext
            for e in sorted(self.lists[list_id], key=lambda e: -e.trs)
        ]


def _run_ops(cluster, ops):
    """Drive the cluster with an op tape; mirror acknowledged writes."""
    ref = _Reference()
    receipts: list[tuple[int, bytes]] = []
    counter = 0
    for opcode, r in ops:
        if opcode in ("insert", "insert_quorum"):
            list_id = r % NUM_LISTS
            counter += 1
            # Unique TRS per element keeps replica order comparison exact.
            element = EncryptedPostingElement(
                ciphertext=b"el-%04d" % counter,
                group="g",
                trs=(counter % 997) / 1000.0,
            )
            consistency = "quorum" if opcode == "insert_quorum" else None
            try:
                cluster.insert("u", list_id, element, consistency=consistency)
            except UnavailableError:
                # Refused (unreachable gapped primary, or a W>1 write
                # without enough ack-capable replicas): not acked.
                continue
            ref.insert(list_id, element)
            receipts.append((list_id, element.ciphertext))
        elif opcode == "kill_primary":
            cluster.fail_server(cluster.replicas_of(r % NUM_LISTS)[0])
        elif opcode == "delete":
            if not receipts:
                continue
            list_id, ciphertext = receipts[r % len(receipts)]
            try:
                removed = cluster.delete_element("u", list_id, ciphertext)
            except UnavailableError:
                continue
            if removed:
                ref.delete(list_id, ciphertext)
        elif opcode == "tick":
            cluster.replication_tick()
        elif opcode == "fail":
            cluster.fail_server(r % NUM_SERVERS)
        elif opcode == "restore":
            cluster.restore_server(r % NUM_SERVERS)
        elif opcode == "pause":
            cluster.pause_follower(r % NUM_SERVERS)
        elif opcode == "resume":
            cluster.resume_follower(r % NUM_SERVERS)
        elif opcode.startswith("fetch"):
            list_id = r % NUM_LISTS
            consistency = opcode.split("_")[1]
            try:
                response = cluster.fetch(
                    FetchRequest(
                        principal="u", list_id=list_id, offset=0, count=5
                    ),
                    consistency=consistency,
                )
            except UnavailableError:
                continue
            # Any response claiming the head version must show exactly
            # the acknowledged state — a strong read cannot lie.
            if response.replica_version == cluster.primary_version(list_id):
                assert [e.ciphertext for e in response.elements] == (
                    ref.expected_order(list_id)[:5]
                ), f"head-version read diverged on list {list_id}"
        elif opcode == "rebalance":
            cluster.rebalance()
    return ref


def _assert_converged(cluster, ref):
    """Heal everything, anti-entropy, then compare every replica to ref."""
    for server_index in range(NUM_SERVERS):
        cluster.restore_server(server_index)
        cluster.resume_follower(server_index)
    applied = cluster.replication_manager.anti_entropy_sweep()
    assert cluster.replication_backlog() == {}, "sweep left stale replicas"
    for list_id in range(NUM_LISTS):
        expected = ref.expected_order(list_id)
        head = cluster.primary_version(list_id)
        for server_index in cluster.replicas_of(list_id):
            assert cluster.applied_version(list_id, server_index) == head
            got = [
                e.ciphertext
                for e in cluster.server(server_index).export_list(list_id)
            ]
            assert got == expected, (
                f"replica {server_index} of list {list_id} diverged"
            )
    assert cluster.num_elements == sum(len(v) for v in ref.lists.values())
    return applied


_OPS = st.lists(
    st.tuples(st.sampled_from(OPCODES), st.integers(0, 10**6)),
    max_size=120,
)

_FAILOVER_OPS = st.lists(
    st.tuples(st.sampled_from(FAILOVER_OPCODES), st.integers(0, 10**6)),
    max_size=120,
)


class TestFuzzedFaultSoup:
    @given(ops=_OPS, lag=st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_acked_writes_survive_and_converge(self, ops, lag):
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=REPLICATION,
            lag=lag,
            placement=HeatWeightedPlacement(),
        )
        ref = _run_ops(cluster, ops)
        _assert_converged(cluster, ref)

    @given(ops=_OPS)
    @settings(max_examples=25, deadline=None)
    def test_anti_entropy_alone_converges_without_ticks(self, ops):
        """Even with lag no tick will ever reach, one healed sweep suffices."""
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=REPLICATION,
            lag=10**6,
        )
        ref = _run_ops(cluster, [op for op in ops if op[0] != "rebalance"])
        _assert_converged(cluster, ref)


class TestFailoverSoup:
    @given(ops=_FAILOVER_OPS, lag=st.integers(0, 4))
    @settings(max_examples=60, deadline=None)
    def test_elections_never_lose_acked_writes(self, ops, lag):
        """Primary kills mid-tape depose primaries through elections;
        every acknowledged write (ONE and QUORUM) still converges."""
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=REPLICATION,
            lag=lag,
            failover_after=2,
            placement=HeatWeightedPlacement(),
        )
        ref = _run_ops(cluster, ops)
        _assert_converged(cluster, ref)
        # Every recorded election is internally consistent.
        for event in cluster.failover_history():
            assert event.old_primary != event.new_primary
            assert 0 <= event.list_id < NUM_LISTS

    @given(ops=_FAILOVER_OPS)
    @settings(max_examples=25, deadline=None)
    def test_quorum_default_soup_converges(self, ops):
        """Same soup with cluster-wide W=QUORUM: refused writes are clean
        no-ops, acked ones converge everywhere."""
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=REPLICATION,
            lag=3,
            failover_after=3,
            write_consistency="quorum",
        )
        ref = _run_ops(cluster, [op for op in ops if op[0] != "rebalance"])
        _assert_converged(cluster, ref)


class TestMidRebalance:
    def test_failures_between_writes_and_migrations(self):
        """Deterministic worst case: fail/restore straddling rebalances."""
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=REPLICATION,
            lag=3,
            placement=HeatWeightedPlacement(),
        )
        ref = _Reference()
        counter = 0

        def write(list_id):
            nonlocal counter
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"mr-%03d" % counter, group="g", trs=counter / 1000.0
            )
            cluster.insert("u", list_id, element)
            ref.insert(list_id, element)

        for list_id in range(NUM_LISTS):
            write(list_id)
            write(list_id)
        # Heat up list 0 so the policy wants to move it, then migrate
        # while its follower is behind AND a server is down.
        for _ in range(6):
            cluster.fetch(
                FetchRequest(principal="u", list_id=0, offset=0, count=2)
            )
        cluster.fail_server(cluster.replicas_of(0)[1])
        cluster.rebalance()
        write(0)  # write lands on the post-migration primary
        cluster.rebalance()  # second migration with backlog in flight
        for server_index in range(NUM_SERVERS):
            cluster.restore_server(server_index)
        cluster.run_replication_until_quiet()
        _assert_converged(cluster, ref)

    def test_election_mid_rebalance_keeps_quorum_writes(self):
        """Kill a primary mid-workload with failover enabled: a replica
        is elected, the epoch moves, a rebalance runs during the outage,
        and no acknowledged QUORUM write is lost."""
        cluster = ServerCluster(
            _keys(),
            num_lists=NUM_LISTS,
            num_servers=NUM_SERVERS,
            replication=3,  # quorum (2) stays reachable with one dead
            lag=2,
            failover_after=2,
            placement=HeatWeightedPlacement(),
        )
        ref = _Reference()
        counter = 0

        def write(list_id, consistency=None):
            nonlocal counter
            counter += 1
            element = EncryptedPostingElement(
                ciphertext=b"fe-%03d" % counter, group="g", trs=counter / 1000.0
            )
            cluster.insert("u", list_id, element, consistency=consistency)
            ref.insert(list_id, element)

        for list_id in range(NUM_LISTS):
            write(list_id, consistency="quorum")
        epoch_before = cluster.placement_epoch
        victim = cluster.replicas_of(0)[0]
        cluster.fail_server(victim)
        write(0)  # mid-write: the primary is already dead (W=ONE lands)
        for _ in range(3):
            cluster.replication_tick()
        assert cluster.failover_history(), "no election fired"
        assert cluster.placement_epoch > epoch_before
        assert cluster.replicas_of(0)[0] != victim
        # The elected primary acknowledges quorum writes mid-outage.
        write(0, consistency="quorum")
        for _ in range(6):  # heat list 0, then rebalance during the outage
            cluster.fetch(
                FetchRequest(principal="u", list_id=0, offset=0, count=2)
            )
        cluster.rebalance()
        write(0, consistency="quorum")
        cluster.restore_server(victim)
        cluster.run_replication_until_quiet()
        _assert_converged(cluster, ref)


@pytest.fixture(scope="module")
def fault_system(micro_corpus):
    return ZerberRSystem.build(micro_corpus, SystemConfig(r=3.0, seed=33))


class TestMidCoordinatorTick:
    def test_primary_reads_match_zero_lag_reference(self, fault_system):
        """Coordinator queries under lag + failures == zero-lag results."""
        system = fault_system
        reference_cluster, _ = system.deploy_cluster(
            num_servers=3, replication=2
        )
        lagged_cluster, coordinator = system.deploy_cluster(
            num_servers=3, replication=2, lag=2, anti_entropy_every=4
        )
        terms = [
            t
            for t in system.vocabulary.terms_by_frequency()
            if system.vocabulary.document_frequency(t) >= 2
        ]
        queries = [terms[i : i + 2] for i in range(0, 8, 2)]
        reference_client = system.client_for(
            "superuser", server=reference_cluster
        )
        lagged_client = system.client_for("superuser", server=lagged_cluster)
        expected = [
            reference_client.query_multi_batched(q, 4).ranked for q in queries
        ]
        sessions = [
            coordinator.submit(lagged_client.open_multi_session(q, 4))
            for q in queries
        ]
        # Fail and restore a different server between scheduling ticks;
        # replication=2 keeps one replica of every list alive.
        victim = 0
        while coordinator.active_sessions:
            lagged_cluster.fail_server(victim)
            coordinator.tick()
            lagged_cluster.restore_server(victim)
            victim = (victim + 1) % lagged_cluster.num_servers
        assert [s.result().ranked for s in sessions] == expected

    def test_writes_during_lag_visible_to_strong_reads(self, fault_system):
        """A document indexed into a lagged cluster is immediately
        queryable at PRIMARY consistency, replica failure included."""
        from repro.text.analysis import DocumentStats

        system = fault_system
        cluster, coordinator = system.deploy_cluster(
            num_servers=3, replication=2, lag=3
        )
        group = sorted(system.corpus.groups())[0]
        owner = system.client_for(f"owner:{group}", server=cluster)
        term = next(
            t
            for t in system.vocabulary.terms_by_frequency()
            if system.vocabulary.document_frequency(t) >= 2
        )
        doc = DocumentStats.from_counts("fresh-doc", {term: 5})
        owner.index_document(doc, group)
        list_id = system.merge_plan.list_of(term)
        cluster.fail_server(cluster.replicas_of(list_id)[0])
        superuser = system.client_for("superuser", server=cluster)
        result = superuser.query(term, k=10)
        assert "fresh-doc" in result.doc_ids()
