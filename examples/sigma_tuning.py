"""σ selection for the RSTF, hands-on (paper §5.1.3, Fig. 9).

Sweeps σ for one term's RSTF, prints the Fig. 9 U-curve, and compares the
paper's cross-validation procedure with the direct spacing-based estimator
this reproduction adds (the paper's "future research" direction).

Run:  python examples/sigma_tuning.py
"""

import numpy as np

from repro import studip_like
from repro.core.scoring import extract_term_scores
from repro.core.sigma import (
    default_sigma_grid,
    heuristic_sigma,
    select_sigma,
    trs_variance_for_sigma,
)
from repro.stats.crossval import train_control_split


def main() -> None:
    corpus = studip_like(num_documents=400, vocabulary_size=4000, seed=21)

    # The paper's §6.1.2 protocol: 30% training sample, one third of it
    # held out as the control set.
    rng = np.random.default_rng(2)
    sample = corpus.sample(0.30, rng)
    term_scores = extract_term_scores(corpus.stats(d.doc_id) for d in sample)
    term = max(term_scores, key=lambda t: len(term_scores[t]))
    train, control = train_control_split(term_scores[term], rng=rng)
    print(
        f"term {term!r}: {len(train)} training / {len(control)} control scores"
    )

    # Sweep sigma and print the U-curve.
    grid = default_sigma_grid(minimum=1.0, maximum=1e6, points=21)
    selection = select_sigma(train, control, grid=grid)
    print("\n  sigma        control-set TRS variance")
    for sigma, variance in zip(selection.sigmas, selection.variances):
        marker = "  <- optimum" if sigma == selection.best_sigma else ""
        print(f"  {sigma:>10.1f}   {variance:.3e}{marker}")

    # The direct estimator: no cross-validation, one formula.
    direct = heuristic_sigma(train)
    v_direct = trs_variance_for_sigma(train, control, direct)
    print(
        f"\ncross-validated optimum: sigma={selection.best_sigma:.1f} "
        f"(variance {selection.best_variance:.3e})"
    )
    print(
        f"direct spacing estimate: sigma={direct:.1f} "
        f"(variance {v_direct:.3e})"
    )
    ratio = v_direct / selection.best_variance
    print(f"direct/CV variance ratio: {ratio:.1f}x — ", end="")
    if ratio < 5:
        print("the one-shot estimate is competitive; skip the sweep.")
    else:
        print("cross-validate for this term.")


if __name__ == "__main__":
    main()
