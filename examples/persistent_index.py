"""Persist a confidential index and query it from a fresh process.

Shows the operational workflow: build once, write the untrusted-host dump
(ciphertexts + TRS + public setup artifacts, never keys), reload it with a
key service reconstructed from the deployment secret, and fetch the top-k
snippets with checksum caching.

Run:  python examples/persistent_index.py
"""

import tempfile
from pathlib import Path

from repro import (
    SnippetClient,
    SnippetStore,
    SystemConfig,
    ZerberRSystem,
    load_index,
    save_index,
    studip_like,
)
from repro.core.client import ZerberRClient
from repro.crypto.keys import GroupKeyService

SECRET = b"deployment-secret-0123456789abcd"


def main() -> None:
    corpus = studip_like(num_documents=150, vocabulary_size=2000, seed=2)

    # --- process 1: build and persist --------------------------------------
    keys = GroupKeyService(master_secret=SECRET)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0), key_service=keys)
    path = Path(tempfile.mkdtemp()) / "index.json"
    save_index(path, system.server, system.merge_plan, system.rstf_model)
    print(
        f"persisted {system.server.num_elements} encrypted elements "
        f"({path.stat().st_size / 1024:.0f} KB) to {path}"
    )

    # --- process 2: reload with the same secret ----------------------------
    keys2 = GroupKeyService(master_secret=SECRET)
    server2, plan2, model2 = load_index(path, keys2)
    for group in corpus.groups():
        keys2.ensure_group(group)
    keys2.register("reader", set(corpus.groups()))
    client = ZerberRClient(
        principal="reader",
        key_service=keys2,
        server=server2,
        rstf_model=model2,
        merge_plan=plan2,
    )
    term = system.vocabulary.terms_by_frequency()[3]
    result = client.query(term, k=5)
    print(f"\nreloaded index answers top-5 for {term!r}: {result.doc_ids()}")
    original = system.query(term, k=5)
    print(f"matches the original deployment: {result.doc_ids() == original.doc_ids()}")

    # --- snippets with checksum caching (§6.6 optimization) -----------------
    store = SnippetStore(keys2)
    publisher = SnippetClient("reader", keys2, store)
    for hit in result.hits:
        publisher.publish(
            hit.group, hit.doc_id, f"<r><d>{hit.doc_id}</d><s>{'…' * 80}</s></r>"
        )
    reader = SnippetClient("reader", keys2, store)
    reader.fetch_many([(h.group, h.doc_id) for h in result.hits])
    cold = reader.bytes_transferred
    reader.fetch_many([(h.group, h.doc_id) for h in result.hits])
    warm = reader.bytes_transferred - cold
    print(
        f"\nsnippets: cold fetch {cold} B, revalidation {warm} B "
        f"({cold / max(warm, 1):.0f}x saved by checksum caching)"
    )


if __name__ == "__main__":
    main()
