"""Play the adversary: the two threat-model attacks of §4.1 / §6.2.

Alice compromises the index server.  She holds background statistics of
the corpus (term priors and reference score distributions) and tries to
(1) identify terms from stored score values and (2) identify queried
terms from follow-up request counts.  The example runs both attacks
against an unprotected score column and against Zerber+R's TRS.

Run:  python examples/attack_analysis.py
"""

import numpy as np

from repro import SystemConfig, ZerberRSystem, studip_like
from repro.attacks import (
    BackgroundKnowledge,
    QueryObservationAttack,
    identification_accuracy,
)
from repro.core.protocol import ResponsePolicy
from repro.core.scoring import extract_term_scores

N_TARGETS = 20


def main() -> None:
    corpus = studip_like(num_documents=300, vocabulary_size=3000, seed=9)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=9))

    # Alice's background knowledge B: in the worst case for the defender,
    # the full statistics of the indexed corpus itself.
    background = BackgroundKnowledge.from_documents(corpus.all_stats())
    term_scores = extract_term_scores(corpus.all_stats())
    targets = [
        t
        for t in system.vocabulary.terms_by_frequency()
        if len(term_scores[t]) >= 25 and t in system.rstf_model
    ][:N_TARGETS]

    # --- Attack 1: score-distribution identification ---------------------
    plain = {t: term_scores[t] for t in targets}
    transformed = {
        t: system.rstf_model.get(t).transform(np.asarray(term_scores[t])).tolist()
        for t in targets
    }
    acc_plain = identification_accuracy(plain, background)
    acc_trs = identification_accuracy(transformed, background)
    chance = 1 / len(targets)
    print("Attack 1 — identify the term behind a posting list's scores")
    print(f"  candidates: {len(targets)} terms (chance level {chance:.2f})")
    print(f"  against plain normalized TF : accuracy {acc_plain:.2f}")
    print(f"  against Zerber+R TRS        : accuracy {acc_trs:.2f}")

    # --- Attack 2: query observation -------------------------------------
    print("\nAttack 2 — infer the queried term from follow-up counts")
    dfs = {t: system.vocabulary.document_frequency(t) for t in system.vocabulary}
    attack = QueryObservationAttack(dfs)
    policy = ResponsePolicy(initial_size=10)
    leaks = [
        attack.list_leakage(list(g), 10, policy)
        for g in system.merge_plan.groups
        if len(g) >= 2
    ]
    print(
        f"  BFM merged lists: {len(leaks)}; "
        f"leak-free (all terms need the same #requests): "
        f"{float(np.mean([l == 0 for l in leaks])):.0%}; "
        f"max spread {max(leaks)} request class(es)"
    )

    # Watch the wire: query a rare and a frequent term and show what the
    # server log reveals.
    system.server.clear_observations()
    ordered = system.vocabulary.terms_by_frequency()
    frequent, rare = ordered[0], ordered[-1]
    system.query(frequent, k=10, policy=policy)
    system.query(rare, k=10, policy=policy)
    print("  server-observed fetches (principal, list, offset, count):")
    for obs in system.server.observations:
        print(f"    {obs.principal}  list={obs.list_id}  offset={obs.offset}  count={obs.count}")
    print(
        "  the term itself never crosses the wire; within a BFM list all\n"
        "  merged terms produce the same request pattern."
    )


if __name__ == "__main__":
    main()
