"""The paper's mobile scenario: top-k over a slow link (§2, §6.4-6.6).

John queries from a PDA on a 56 Kb/s connection, so the transferred
volume matters.  This example sweeps the initial response size b and shows
why the paper recommends b = k, then prices the answer with the §6.6
network model against the published competitor page sizes.

Run:  python examples/mobile_topk.py
"""

import numpy as np

from repro import ResponsePolicy, SystemConfig, ZerberRSystem, studip_like
from repro.corpus import QueryLogConfig, QueryLogGenerator
from repro.evalmetrics.bandwidth import (
    average_bandwidth_overhead,
    average_num_requests,
)
from repro.evalmetrics.netmodel import NetworkModel
from repro.text.vocabulary import Vocabulary

K = 10
B_SWEEP = [1, 5, 10, 20, 50]
N_QUERY_TERMS = 40


def main() -> None:
    corpus = studip_like(num_documents=300, vocabulary_size=3000, seed=5)
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0, seed=5))
    vocabulary = Vocabulary.from_documents(corpus.all_stats())
    log = QueryLogGenerator(
        vocabulary, QueryLogConfig(num_queries=5000, seed=6)
    ).generate()

    # A frequency-weighted sample of query terms (replaying the workload).
    freqs = log.term_frequencies()
    terms = [t for t in freqs if t in vocabulary]
    weights = np.array([freqs[t] for t in terms], dtype=float)
    weights /= weights.sum()
    rng = np.random.default_rng(7)
    sample = [terms[i] for i in rng.choice(len(terms), N_QUERY_TERMS, p=weights)]

    client = system.client_for("superuser")
    print(f"top-{K} over {N_QUERY_TERMS} workload queries, sweeping b:\n")
    print(f"{'b':>4}  {'AvBO':>6}  {'avg requests':>12}  {'avg KB':>7}")
    best = None
    for b in B_SWEEP:
        policy = ResponsePolicy(initial_size=b)
        traces = [client.query(t, k=K, policy=policy).trace for t in sample]
        avbo = average_bandwidth_overhead(traces)
        requests = average_num_requests(traces)
        kb = float(np.mean([t.bits_transferred for t in traces])) / 8 / 1024
        print(f"{b:>4}  {avbo:>6.2f}  {requests:>12.2f}  {kb:>7.2f}")
        if best is None or avbo < best[1]:
            best = (b, avbo)
    print(f"\nbest initial response size: b={best[0]} (paper: b=k={K})")

    # Price one answer with the §6.6 model.
    policy = ResponsePolicy(initial_size=K)
    traces = [client.query(t, k=K, policy=policy).trace for t in sample]
    elements_per_term = float(np.mean([t.elements_transferred for t in traces]))
    model = NetworkModel()
    print(
        f"\n§6.6 pricing with {elements_per_term:.0f} elements/term "
        f"(2.4 terms/query, 250 B snippets):"
    )
    for name, kb in model.comparison_table(elements_per_term, K):
        marker = "  <- this system" if name == "Zerber+R" else ""
        print(f"  {name:<10} {kb:>6.1f} KB{marker}")
    print(
        f"  modem download: {model.modem_seconds(elements_per_term, K):.2f} s, "
        f"server throughput: {model.queries_per_second(elements_per_term):.0f} queries/s"
    )


if __name__ == "__main__":
    main()
