"""The paper's §2 scenario: PCC (Production Control Company).

John leads several customer projects inside PCC.  Documents are shared
per-project through a largely untrusted index server; John must get
precise top-k results over *his* projects while members of other projects
(and the server itself) learn nothing about documents they cannot read.

Run:  python examples/enterprise_sharing.py
"""

from repro import SystemConfig, ZerberRSystem
from repro.corpus import Corpus, Document
from repro.errors import AccessDeniedError


def build_pcc_corpus() -> Corpus:
    """A small hand-written corpus of project documents."""
    documents = [
        # Project Alpha: a chemical-process control deployment.
        ("alpha", "reactor control loop calibration for the alpha pilot plant"),
        ("alpha", "alpha pilot plant compound dosing schedule and reactor limits"),
        ("alpha", "meeting notes alpha reactor vendor selection and dosing budget"),
        # Project Beta: an assembly-line vision system.
        ("beta", "vision system defect detection thresholds for beta line"),
        ("beta", "beta line camera calibration and defect catalogue revision"),
        ("beta", "quarterly beta review defect rates and camera maintenance"),
        # Project Gamma: John is NOT a member here.
        ("gamma", "gamma confidential acquisition target shortlist and pricing"),
        ("gamma", "gamma pricing model assumptions and negotiation strategy"),
    ]
    corpus = Corpus(name="pcc")
    for i, (project, text) in enumerate(documents):
        corpus.add(Document(doc_id=f"{project}-{i}", group=project, text=text))
    return corpus


def main() -> None:
    corpus = build_pcc_corpus()
    # Small corpus + small r: every term set can still satisfy Def. 2.
    system = ZerberRSystem.build(
        corpus, SystemConfig(r=1.5, training_fraction=0.9, seed=3)
    )
    print(
        f"PCC index: {system.server.num_elements} encrypted elements, "
        f"{system.merge_plan.num_lists} merged lists, "
        f"confidential={system.audit().is_confidential}"
    )

    # John works on alpha and beta, but not gamma.
    john = system.register_user("john", {"alpha", "beta"})

    print("\nJohn searches 'calibration' (top-2):")
    result = john.query("calibration", k=2)
    for hit in result.hits:
        print(f"  {hit.doc_id}  rscore={hit.rscore:.3f}  project={hit.group}")
    assert all(hit.group in {"alpha", "beta"} for hit in result.hits)

    print("\nJohn searches 'pricing' (a gamma-only term):")
    pricing = john.query("pricing", k=5)
    print(f"  results: {pricing.doc_ids() or '(none — no readable documents)'}")
    assert pricing.hits == ()

    # The key service refuses John the gamma key outright.
    try:
        system.key_service.group_key("john", "gamma")
    except AccessDeniedError as error:
        print(f"\nkey service: {error}")

    # A gamma member sees gamma documents fine.
    gamma_member = system.register_user("carol", {"gamma"})
    carol_result = gamma_member.query("pricing", k=5)
    print(f"carol's 'pricing' results: {carol_result.doc_ids()}")

    # What the compromised server sees for the list holding 'pricing':
    list_id = system.merge_plan.list_of("pricing")
    trs = system.server.visible_trs_values(list_id)
    print(
        f"\nserver-visible state of merged list {list_id}: "
        f"{len(trs)} TRS values in [{min(trs):.3f}, {max(trs):.3f}] — "
        "no terms, no scores, no document ids"
    )


if __name__ == "__main__":
    main()
