"""Quickstart: build a confidential index, query it, inspect the costs.

Run:  python examples/quickstart.py
"""

from repro import OrdinaryInvertedIndex, SystemConfig, ZerberRSystem, studip_like


def main() -> None:
    # 1. A document collection partitioned into collaboration groups.
    #    (Synthetic StudIP-shaped data; swap in your own Corpus of
    #    Documents with text= or counts=.)
    corpus = studip_like(num_documents=300, vocabulary_size=3000, seed=1)
    print(f"corpus: {len(corpus)} documents in {len(corpus.groups())} groups")

    # 2. Build the Zerber+R system: trains and publishes the per-term
    #    RSTFs, derives the r-confidential BFM merge plan, stands up the
    #    key service and the untrusted index server, and lets each group
    #    owner encrypt + upload its posting elements.
    system = ZerberRSystem.build(corpus, SystemConfig(r=4.0))
    audit = system.audit()
    print(
        f"index: {system.server.num_elements} encrypted posting elements in "
        f"{system.merge_plan.num_lists} merged lists "
        f"(r={system.config.r}, max amplification {audit.max_amplification:.2f}, "
        f"confidential={audit.is_confidential})"
    )

    # 3. Run a single-term top-10 query as the superuser (member of all
    #    groups).  The server ranks by the public TRS values; the client
    #    decrypts, filters, and issues doubling follow-ups if needed.
    term = system.vocabulary.terms_by_frequency()[5]
    result = system.query(term, k=10)
    print(f"\ntop-10 for {term!r}:")
    for hit in result.hits:
        print(f"  {hit.doc_id}  rscore={hit.rscore:.4f}  group={hit.group}")
    trace = result.trace
    print(
        f"cost: {trace.num_requests} request(s), "
        f"{trace.elements_transferred} posting elements "
        f"({trace.bits_transferred / 8 / 1024:.2f} KB)"
    )

    # 4. Cross-check against an ordinary (unprotected) inverted index:
    #    single-term rankings are identical because the RSTF is monotonic.
    ordinary = OrdinaryInvertedIndex.from_documents(corpus.all_stats())
    expected = [e.doc_id for e in ordinary.top_k(term, 10)]
    match = [h.doc_id for h in result.hits] == expected
    print(f"\nmatches ordinary inverted index ranking: {match}")


if __name__ == "__main__":
    main()
